package faas

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/datastore"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/sim"
	"gpufaas/internal/stats"
)

// GatewayConfig assembles a live GPU-FaaS gateway.
type GatewayConfig struct {
	// Policy is the scheduler policy name ("LB", "LALB", "LALBO3").
	Policy string
	// O3Limit is the LALBO3 starvation limit (default 25).
	O3Limit int
	// Nodes / GPUsPerNode / GPUMemory describe the cluster (defaults:
	// the paper's 3x4 testbed).
	Nodes       int
	GPUsPerNode int
	GPUMemory   int64
	// Fleet declares a heterogeneous GPU fleet (device classes with
	// counts, memory, cost). When nil the homogeneous
	// Nodes/GPUsPerNode/GPUMemory fields apply.
	Fleet cluster.FleetSpec
	// TimeScale scales the Table I profile times so demos run quickly
	// (0.001 turns seconds into milliseconds). Default 1.0.
	TimeScale float64
	// InvokeTimeout bounds one inference invocation (default 60s,
	// scaled by TimeScale is the caller's business — this is wall time).
	InvokeTimeout time.Duration
	// Zoo overrides the Table I model zoo.
	Zoo *models.Zoo
	// Autoscale attaches an autoscaler to the live cluster; the admin
	// endpoints (/system/autoscaler) expose and toggle it.
	Autoscale *autoscale.Config
}

// Gateway is the public route of the FaaS platform (Fig. 1): it handles
// function CRUD and invocation, and fronts the GPU scheduler.
type Gateway struct {
	registry *Registry
	cluster  *cluster.Cluster
	store    *datastore.Store
	infer    *InferenceClient
	clock    sim.Clock

	mu        sync.Mutex
	watchdogs map[string]*Watchdog
	rr        map[string]int // function -> round-robin replica cursor
	latHist   *stats.Welford
}

// NewGateway builds the gateway plus its live cluster and datastore.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Policy == "" {
		cfg.Policy = "LALBO3"
	}
	pol, err := core.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("faas: negative time scale %g", cfg.TimeScale)
	}
	if cfg.InvokeTimeout == 0 {
		cfg.InvokeTimeout = 60 * time.Second
	}
	zoo := cfg.Zoo
	if zoo == nil {
		zoo = models.Default()
	}

	ccfg := cluster.DefaultConfig()
	ccfg.Policy = pol
	if cfg.O3Limit > 0 {
		ccfg.O3Limit = cfg.O3Limit
	}
	if cfg.Nodes > 0 {
		ccfg.Nodes = cfg.Nodes
	}
	if cfg.GPUsPerNode > 0 {
		ccfg.GPUsPerNode = cfg.GPUsPerNode
	}
	if cfg.GPUMemory > 0 {
		ccfg.GPUMemory = cfg.GPUMemory
	}
	ccfg.Zoo = zoo
	if cfg.Fleet != nil {
		// Copy: cluster.New normalizes the spec in place (memory
		// defaulting) and must not mutate the caller's GatewayConfig.
		ccfg.Fleet = append(cluster.FleetSpec(nil), cfg.Fleet...)
		prof, err := FleetProfiles(zoo, cfg.Fleet, cfg.TimeScale)
		if err != nil {
			return nil, err
		}
		ccfg.Profiles = prof
	} else {
		ccfg.Profiles = ScaledProfiles(zoo, cluster.DefaultGPUType, cfg.TimeScale)
	}
	clock := sim.NewRealClock()
	ccfg.Clock = clock

	store := datastore.New()
	ccfg.Sink = DatastoreSink{Store: store}
	ccfg.Autoscale = cfg.Autoscale

	g := &Gateway{
		registry:  NewRegistry(),
		store:     store,
		clock:     clock,
		watchdogs: make(map[string]*Watchdog),
		rr:        make(map[string]int),
		latHist:   &stats.Welford{},
	}
	var ic *InferenceClient
	ccfg.OnResult = func(res gpumgr.Result) {
		g.latHist.Add(res.Latency().Seconds())
		ic.Route(res)
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	ic = NewInferenceClient(c, clock, cfg.InvokeTimeout)
	g.cluster = c
	g.infer = ic
	return g, nil
}

// Cluster exposes the underlying cluster (metrics, devices).
func (g *Gateway) Cluster() *cluster.Cluster { return g.cluster }

// Store exposes the datastore (status pages, tests).
func (g *Gateway) Store() *datastore.Store { return g.store }

// Registry exposes function CRUD.
func (g *Gateway) Registry() *Registry { return g.registry }

// Deploy registers a function and builds its watchdog.
func (g *Gateway) Deploy(spec FunctionSpec) (*Function, error) {
	fn, err := g.registry.Deploy(spec)
	if err != nil {
		return nil, err
	}
	if spec.GPUEnabled {
		if _, ok := g.cluster.Zoo().Get(spec.Model); !ok {
			_ = g.registry.Remove(spec.Name)
			return nil, fmt.Errorf("faas: model %q not in the cluster zoo", spec.Model)
		}
	}
	g.mu.Lock()
	g.watchdogs[spec.Name] = NewWatchdog(fn.Spec, g.infer, g.store, g.clock)
	g.mu.Unlock()
	return fn, nil
}

// Invoke routes one invocation to the function's next container replica.
func (g *Gateway) Invoke(name string, req InvokeRequest) (InvokeResponse, error) {
	fn, err := g.registry.Get(name)
	if err != nil {
		return InvokeResponse{}, err
	}
	g.registry.recordInvocation(name)
	g.mu.Lock()
	wd := g.watchdogs[name]
	g.rr[name] = (g.rr[name] + 1) % len(fn.Containers)
	g.mu.Unlock()
	if wd == nil {
		return InvokeResponse{}, fmt.Errorf("%w: %s has no watchdog", ErrNotFound, name)
	}
	return wd.Handle(req)
}

// Remove deletes a function and its watchdog.
func (g *Gateway) Remove(name string) error {
	if err := g.registry.Remove(name); err != nil {
		return err
	}
	g.mu.Lock()
	delete(g.watchdogs, name)
	delete(g.rr, name)
	g.mu.Unlock()
	return nil
}

// ScaledProfiles builds a profile store from the zoo's Table I times with
// all durations multiplied by scale (live demos use scale << 1).
func ScaledProfiles(zoo *models.Zoo, gpuType string, scale float64) *models.ProfileStore {
	base := models.TableProfiles(gpuType, zoo)
	return scaleStore(base, zoo, scale)
}

// FleetProfiles builds the live gateway's profile store for a declared
// fleet: per-class Table I times (each class's built-in slowdown)
// multiplied by scale. Classes without a built-in device class are an
// error — the gateway has no profiling pass to cover them.
func FleetProfiles(zoo *models.Zoo, fleet cluster.FleetSpec, scale float64) (*models.ProfileStore, error) {
	base, err := models.FleetTableProfiles(zoo, fleet.Types()...)
	if err != nil {
		return nil, err
	}
	return scaleStore(base, zoo, scale), nil
}

// scaleStore multiplies every profile duration in the store by scale.
func scaleStore(base *models.ProfileStore, zoo *models.Zoo, scale float64) *models.ProfileStore {
	if scale == 1 {
		return base
	}
	out := models.NewProfileStore()
	for _, gpuType := range base.GPUTypes() {
		for _, m := range zoo.All() {
			p, ok := base.Get(gpuType, m.Name)
			if !ok {
				continue
			}
			p.LoadTime = time.Duration(float64(p.LoadTime) * scale)
			p.InferFit.Alpha *= scale
			p.InferFit.Beta *= scale
			out.Put(p)
		}
	}
	return out
}

// ---- HTTP layer ----

// Handler returns the gateway's HTTP mux with the OpenFaaS-style routes:
//
//	POST   /system/functions        deploy (JSON FunctionSpec)
//	PUT    /system/functions        update
//	GET    /system/functions        list
//	GET    /system/functions/{name} describe
//	DELETE /system/functions/{name} remove
//	POST   /system/scale/{name}     {"replicas": N}
//	GET    /system/scale            fleet membership breakdown
//	POST   /system/scale            {"target": N, "coldStartMs": M} — elastic GPU scaling
//	GET    /system/autoscaler       autoscaler status + scale-event log
//	POST   /system/autoscaler       {"enabled": bool} — pause/resume the autoscaler
//	GET    /system/metrics          cluster report
//	GET    /system/gpus             GPU status from the datastore
//	POST   /function/{name}         invoke
//	GET    /healthz                 liveness
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/system/functions", g.handleFunctions)
	mux.HandleFunc("/system/functions/", g.handleFunction)
	mux.HandleFunc("/system/scale", g.handleClusterScale)
	mux.HandleFunc("/system/autoscaler", g.handleAutoscaler)
	mux.HandleFunc("/system/scale/", g.handleScale)
	mux.HandleFunc("/system/metrics", g.handleMetrics)
	mux.HandleFunc("/system/gpus", g.handleGPUs)
	mux.HandleFunc("/function/", g.handleInvoke)
	mux.HandleFunc("/metrics", g.handlePromMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (g *Gateway) handleFunctions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, g.registry.List())
	case http.MethodPost, http.MethodPut:
		var spec FunctionSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		var fn *Function
		var err error
		if r.Method == http.MethodPost {
			fn, err = g.Deploy(spec)
		} else {
			fn, err = g.registry.Update(spec)
			if err == nil {
				g.mu.Lock()
				g.watchdogs[spec.Name] = NewWatchdog(fn.Spec, g.infer, g.store, g.clock)
				g.mu.Unlock()
			}
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, fn)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleFunction(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/system/functions/")
	if name == "" {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		fn, err := g.registry.Get(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, fn)
	case http.MethodDelete:
		if err := g.Remove(name); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleScale(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/system/scale/")
	var body struct {
		Replicas int `json:"replicas"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	fn, err := g.registry.Scale(name, body.Replicas)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, fn)
}

// handleClusterScale is the elastic-membership admin endpoint: GET
// reports the fleet breakdown; POST reconciles the fleet to a target
// size (provision with cold start / drain-decommission).
func (g *Gateway) handleClusterScale(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		bound, live := g.cluster.OrdStatus()
		writeJSON(w, http.StatusOK, map[string]any{
			"counts":  g.cluster.FleetCounts(),
			"classes": g.cluster.ClassStatuses(),
			"gpus":    g.cluster.GPUIDs(),
			// Registration-ordinal pressure: ordinals are never reused,
			// so dead = bound − live is the state the ROADMAP's ordinal
			// compaction would reclaim.
			"ords": map[string]int{"bound": bound, "live": live, "dead": bound - live},
		})
	case http.MethodPost:
		var body struct {
			Target      int   `json:"target"`
			ColdStartMs int64 `json:"coldStartMs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if body.ColdStartMs < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "negative coldStartMs"})
			return
		}
		added, removed, err := g.cluster.ScaleTo(body.Target, time.Duration(body.ColdStartMs)*time.Millisecond)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"added":   added,
			"removed": removed,
			"counts":  g.cluster.FleetCounts(),
		})
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleAutoscaler exposes the attached autoscaler: GET returns status
// (policy, last signal, scale-event log), POST toggles it.
func (g *Gateway) handleAutoscaler(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st, ok := g.cluster.AutoscalerStatus()
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no autoscaler attached"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodPost:
		var body struct {
			Enabled *bool `json:"enabled"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if body.Enabled == nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing enabled"})
			return
		}
		if !g.cluster.SetAutoscalerEnabled(*body.Enabled) {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no autoscaler attached"})
			return
		}
		st, _ := g.cluster.AutoscalerStatus()
		writeJSON(w, http.StatusAccepted, st)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, g.cluster.Snapshot())
}

func (g *Gateway) handleGPUs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	type gpuStatus struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	var out []gpuStatus
	for _, kv := range g.store.List("gpu/") {
		id := strings.TrimSuffix(strings.TrimPrefix(kv.Key, "gpu/"), "/status")
		out = append(out, gpuStatus{ID: id, Status: string(kv.Value)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	resp, err := g.Invoke(name, InvokeRequest{Body: body})
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if len(resp.Body) > 0 {
		w.Write(resp.Body)
	} else {
		_ = json.NewEncoder(w).Encode(resp)
	}
}
