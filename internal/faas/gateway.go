package faas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/datastore"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/multicell"
	"gpufaas/internal/sim"
)

// GatewayConfig assembles a live GPU-FaaS gateway.
type GatewayConfig struct {
	// Policy is the scheduler policy name ("LB", "LALB", "LALBO3").
	Policy string
	// O3Limit is the LALBO3 starvation limit (default 25).
	O3Limit int
	// Nodes / GPUsPerNode / GPUMemory describe the cluster (defaults:
	// the paper's 3x4 testbed).
	Nodes       int
	GPUsPerNode int
	GPUMemory   int64
	// Fleet declares a heterogeneous GPU fleet (device classes with
	// counts, memory, cost). When nil the homogeneous
	// Nodes/GPUsPerNode/GPUMemory fields apply.
	Fleet cluster.FleetSpec
	// TimeScale scales the Table I profile times so demos run quickly
	// (0.001 turns seconds into milliseconds). Default 1.0.
	TimeScale float64
	// InvokeTimeout bounds one inference invocation (default 60s,
	// scaled by TimeScale is the caller's business — this is wall time).
	InvokeTimeout time.Duration
	// Zoo overrides the Table I model zoo.
	Zoo *models.Zoo
	// Autoscale attaches an autoscaler to the live cluster; the admin
	// endpoints (/system/autoscaler) expose and toggle it. Multi-cell
	// gateways reject it (per-cell policies must not share hysteresis
	// state; see ROADMAP).
	Autoscale *autoscale.Config
	// Cells shards the live fleet into this many independent cells,
	// each with its own scheduler/cache stack, behind the same
	// deterministic front-door router the simulation uses (0 or 1: one
	// cluster). The admin endpoints take ?cell=N and /system/cells
	// summarizes the fleet.
	Cells int
	// CellRouter names the front-door policy ("hash", "affinity",
	// "leastload"); empty selects "hash".
	CellRouter string
	// Admission enables per-cell admission control and load shedding
	// on the invocation path (bounded queue, deadline-aware rejection,
	// per-tenant token buckets). Nil leaves the path unbounded — the
	// pre-overload-work behavior, kept as the shedding-off comparison
	// mode for the overload benchmark.
	Admission *AdmissionConfig
	// MaxBodyBytes caps an HTTP invocation body; larger requests get
	// 413 Request Entity Too Large. Default 64 MiB.
	MaxBodyBytes int64
}

// Gateway is the public route of the FaaS platform (Fig. 1): it handles
// function CRUD and invocation, and fronts the GPU scheduler.
type Gateway struct {
	registry *Registry
	cells    []*cluster.Cluster // cell 0 is the whole fleet when unsharded
	store    *datastore.Store
	infer    *InferenceClient
	clock    sim.Clock
	router   *multicell.Router // nil on a single-cell gateway

	// fns maps function name -> *liveFunction. Invoke only ever reads
	// it; Deploy/Update/Remove publish whole entries, so concurrent
	// invocations of different (or the same) function share no lock —
	// the old global mutex serialized every invocation in the fleet.
	fns          sync.Map
	admit        *admission // nil: admission control disabled
	maxBodyBytes int64
	// latHists holds one request-duration histogram per cell; /metrics
	// exposes them as gpufaas_request_duration_seconds{cell="N"}.
	latHists []*promHistogram
}

// liveFunction is the per-function invocation state the hot path
// touches: the watchdog, the round-robin replica cursor and the replica
// count (both atomics — Scale publishes, Invoke consumes), and the
// registry's stored entry whose Invocations counter Invoke bumps
// atomically instead of taking the registry lock.
type liveFunction struct {
	wd       *Watchdog
	fn       *Function
	rr       atomic.Uint64
	replicas atomic.Int64
	cell     int // admission home cell (front-door ring position)
}

// replica returns the container index the cursor last selected.
func (lf *liveFunction) replica(cursor uint64) int {
	n := lf.replicas.Load()
	if n <= 0 {
		return 0
	}
	return int(cursor % uint64(n))
}

// NewGateway builds the gateway plus its live cluster and datastore.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Policy == "" {
		cfg.Policy = "LALBO3"
	}
	pol, err := core.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("faas: negative time scale %g", cfg.TimeScale)
	}
	if cfg.InvokeTimeout == 0 {
		cfg.InvokeTimeout = 60 * time.Second
	}
	zoo := cfg.Zoo
	if zoo == nil {
		zoo = models.Default()
	}
	cells := cfg.Cells
	if cells == 0 {
		cells = 1
	}
	if cells < 1 {
		return nil, fmt.Errorf("faas: need >= 1 cell, got %d", cells)
	}
	routerPol := multicell.RouteHash
	if cfg.CellRouter != "" {
		if routerPol, err = multicell.ParsePolicy(cfg.CellRouter); err != nil {
			return nil, err
		}
	}
	if cells > 1 && cfg.Autoscale != nil {
		// An autoscale.Config carries one live policy instance; cells
		// must not share its hysteresis state. Per-cell autoscaling is a
		// ROADMAP follow-on.
		return nil, errors.New("faas: autoscaler is single-cell only (per-cell autoscaling is not wired yet)")
	}

	ccfg := cluster.DefaultConfig()
	ccfg.Policy = pol
	if cfg.O3Limit > 0 {
		ccfg.O3Limit = cfg.O3Limit
	}
	if cfg.Nodes > 0 {
		ccfg.Nodes = cfg.Nodes
	}
	if cfg.GPUsPerNode > 0 {
		ccfg.GPUsPerNode = cfg.GPUsPerNode
	}
	if cfg.GPUMemory > 0 {
		ccfg.GPUMemory = cfg.GPUMemory
	}
	ccfg.Zoo = zoo
	if cfg.Fleet == nil {
		ccfg.Profiles = ScaledProfiles(zoo, cluster.DefaultGPUType, cfg.TimeScale)
	} else {
		prof, err := FleetProfiles(zoo, cfg.Fleet, cfg.TimeScale)
		if err != nil {
			return nil, err
		}
		ccfg.Profiles = prof
	}
	clock := sim.NewRealClock()
	ccfg.Clock = clock
	ccfg.Autoscale = cfg.Autoscale

	// Shard the declared fleet (or node count) across the cells exactly
	// as the simulation does.
	var cellFleets []cluster.FleetSpec
	var cellNodes []int
	if cfg.Fleet != nil {
		cellFleets, err = multicell.PartitionFleet(cfg.Fleet, cells)
		if err != nil {
			return nil, err
		}
	} else {
		cellNodes = multicell.PartitionCounts(ccfg.Nodes, cells)
		if cellNodes[len(cellNodes)-1] == 0 {
			return nil, fmt.Errorf("faas: %d nodes cannot shard into %d cells", ccfg.Nodes, cells)
		}
	}

	store := datastore.New()
	g := &Gateway{
		registry:     NewRegistry(),
		store:        store,
		clock:        clock,
		maxBodyBytes: cfg.MaxBodyBytes,
		latHists:     make([]*promHistogram, cells),
	}
	if g.maxBodyBytes == 0 {
		g.maxBodyBytes = 64 << 20
	}
	if g.maxBodyBytes < 0 {
		return nil, fmt.Errorf("faas: negative body limit %d", cfg.MaxBodyBytes)
	}
	if cfg.Admission != nil {
		if g.admit, err = newAdmission(*cfg.Admission, cells); err != nil {
			return nil, err
		}
	}
	// One shared inference client fronts every cell: a single request-ID
	// counter keeps datastore latency keys and waiter routing unique
	// fleet-wide, and its Route is every cell's OnResult hook. The hook
	// is built per cell so each completion lands in its own cell's
	// latency histogram.
	var ic *InferenceClient
	onResult := func(cell int) func(gpumgr.Result) {
		return func(res gpumgr.Result) {
			g.latHists[cell].Observe(res.Latency().Seconds())
			ic.Route(res)
		}
	}
	g.cells = make([]*cluster.Cluster, cells)
	for i := range g.cells {
		g.latHists[i] = newPromHistogram()
		cc := ccfg
		if cellFleets != nil {
			// Copy: cluster.New normalizes the spec in place (memory
			// defaulting) and must not mutate the caller's GatewayConfig.
			cc.Fleet = append(cluster.FleetSpec(nil), cellFleets[i]...)
		} else {
			cc.Nodes = cellNodes[i]
		}
		sink := DatastoreSink{Store: store}
		if cells > 1 {
			// Every cell names its nodes node0..nodeN; the prefix keeps
			// the per-GPU status keys fleet-unique.
			sink.Prefix = fmt.Sprintf("cell%d/", i)
		}
		cc.Sink = sink
		cc.OnResult = onResult(i)
		// A dropped dispatch (per-tenant GPU quota, impossible model)
		// must fail the waiting invocation immediately — without the
		// hook the Predict waiter would hold its arena slot until the
		// invoke timeout.
		cc.OnDrop = func(id int64, err error) { ic.Drop(id, err) }
		c, err := cluster.New(cc)
		if err != nil {
			return nil, err
		}
		g.cells[i] = c
	}
	var router *multicell.Router
	if cells > 1 {
		// The live router is seeded like the simulation's default (the
		// workload seed there, fixed here: the ring layout is stable
		// across gateway restarts).
		router, err = multicell.NewRouter(multicell.RouterConfig{Cells: cells, Policy: routerPol, Seed: 1})
		if err != nil {
			return nil, err
		}
	}
	g.router = router
	ic = NewCellInferenceClient(g.cells, router, clock, cfg.InvokeTimeout)
	g.infer = ic
	return g, nil
}

// Cluster exposes the underlying cluster (metrics, devices); with
// multiple cells it is cell 0 — use Cell for the rest.
func (g *Gateway) Cluster() *cluster.Cluster { return g.cells[0] }

// CellCount reports the number of live cells.
func (g *Gateway) CellCount() int { return len(g.cells) }

// Cell exposes one cell's cluster; out-of-range indices return nil.
func (g *Gateway) Cell(i int) *cluster.Cluster {
	if i < 0 || i >= len(g.cells) {
		return nil
	}
	return g.cells[i]
}

// Store exposes the datastore (status pages, tests).
func (g *Gateway) Store() *datastore.Store { return g.store }

// Registry exposes function CRUD.
func (g *Gateway) Registry() *Registry { return g.registry }

// Deploy registers a function and builds its watchdog.
func (g *Gateway) Deploy(spec FunctionSpec) (*Function, error) {
	fn, err := g.registry.Deploy(spec)
	if err != nil {
		return nil, err
	}
	if spec.GPUEnabled {
		if _, ok := g.cells[0].Zoo().Get(spec.Model); !ok {
			_ = g.registry.Remove(spec.Name)
			return nil, fmt.Errorf("faas: model %q not in the cluster zoo", spec.Model)
		}
	}
	g.publish(fn)
	return fn, nil
}

// publish (re)builds the function's live invocation entry. fn must be
// the registry's stored pointer: Invoke bumps its Invocations counter
// atomically.
func (g *Gateway) publish(fn *Function) {
	lf := &liveFunction{
		wd:   NewWatchdog(fn.Spec, g.infer, g.store, g.clock),
		fn:   fn,
		cell: g.homeCell(fn.Spec),
	}
	lf.replicas.Store(int64(len(fn.Containers)))
	g.fns.Store(fn.Spec.Name, lf)
}

// homeCell picks the cell whose admission queue gates this function's
// invocations: its front-door ring position (the model's for the
// affinity router, the function's otherwise). For the leastload router
// the live cell varies per request; the hash home is the documented
// approximation.
func (g *Gateway) homeCell(spec FunctionSpec) int {
	if g.router == nil {
		return 0
	}
	key := spec.Name
	if g.infer != nil && g.infer.routerPolicyValue() == multicell.RouteAffinity && spec.Model != "" {
		key = spec.Model
	}
	return g.router.Home(key)
}

// Invoke routes one invocation to the function's next container
// replica. The hot path is lock-free: a sync.Map read, the admission
// gate (channel + atomics), and two atomic bumps.
func (g *Gateway) Invoke(name string, req InvokeRequest) (InvokeResponse, error) {
	v, ok := g.fns.Load(name)
	if !ok {
		return InvokeResponse{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	lf := v.(*liveFunction)
	if g.admit != nil {
		tenant := req.Tenant
		if tenant == "" {
			tenant = lf.fn.Spec.Tenant
		}
		ca, err := g.admit.admit(lf.cell, tenant)
		if err != nil {
			return InvokeResponse{}, err
		}
		defer ca.release(time.Now())
	}
	atomic.AddInt64(&lf.fn.Invocations, 1)
	_ = lf.replica(lf.rr.Add(1)) // advance the round-robin cursor
	return lf.wd.Handle(req)
}

// Remove deletes a function and its watchdog.
func (g *Gateway) Remove(name string) error {
	if err := g.registry.Remove(name); err != nil {
		return err
	}
	g.fns.Delete(name)
	return nil
}

// Scale sets a function's replica count and publishes it to the live
// invocation entry.
func (g *Gateway) Scale(name string, replicas int) (*Function, error) {
	fn, err := g.registry.Scale(name, replicas)
	if err != nil {
		return nil, err
	}
	if v, ok := g.fns.Load(name); ok {
		v.(*liveFunction).replicas.Store(int64(replicas))
	}
	return fn, nil
}

// AdmissionStats reports the per-cell admission counters (nil without
// admission control).
func (g *Gateway) AdmissionStats() []AdmissionCellStats {
	if g.admit == nil {
		return nil
	}
	return g.admit.stats()
}

// ArenaStats reports the live request arena's counters: in steady
// state Allocated stops at the peak in-flight count and every further
// invocation reuses a recycled request.
func (g *Gateway) ArenaStats() core.ArenaStats { return g.infer.ArenaStats() }

// ScaledProfiles builds a profile store from the zoo's Table I times with
// all durations multiplied by scale (live demos use scale << 1).
func ScaledProfiles(zoo *models.Zoo, gpuType string, scale float64) *models.ProfileStore {
	base := models.TableProfiles(gpuType, zoo)
	return scaleStore(base, zoo, scale)
}

// FleetProfiles builds the live gateway's profile store for a declared
// fleet: per-class Table I times (each class's built-in slowdown)
// multiplied by scale. Classes without a built-in device class are an
// error — the gateway has no profiling pass to cover them.
func FleetProfiles(zoo *models.Zoo, fleet cluster.FleetSpec, scale float64) (*models.ProfileStore, error) {
	base, err := models.FleetTableProfiles(zoo, fleet.Types()...)
	if err != nil {
		return nil, err
	}
	return scaleStore(base, zoo, scale), nil
}

// scaleStore multiplies every profile duration in the store by scale.
func scaleStore(base *models.ProfileStore, zoo *models.Zoo, scale float64) *models.ProfileStore {
	if scale == 1 {
		return base
	}
	out := models.NewProfileStore()
	for _, gpuType := range base.GPUTypes() {
		for _, m := range zoo.All() {
			p, ok := base.Get(gpuType, m.Name)
			if !ok {
				continue
			}
			p.LoadTime = time.Duration(float64(p.LoadTime) * scale)
			p.InferFit.Alpha *= scale
			p.InferFit.Beta *= scale
			out.Put(p)
		}
	}
	return out
}

// ---- HTTP layer ----

// Handler returns the gateway's HTTP mux with the OpenFaaS-style routes:
//
//	POST   /system/functions        deploy (JSON FunctionSpec)
//	PUT    /system/functions        update
//	GET    /system/functions        list
//	GET    /system/functions/{name} describe
//	DELETE /system/functions/{name} remove
//	POST   /system/scale/{name}     {"replicas": N}
//	GET    /system/scale            fleet membership breakdown
//	POST   /system/scale            {"target": N, "coldStartMs": M} — elastic GPU scaling
//	GET    /system/autoscaler       autoscaler status + scale-event log
//	POST   /system/autoscaler       {"enabled": bool} — pause/resume the autoscaler
//	GET    /system/cells            per-cell fleet + routing summary
//	GET    /system/metrics          cluster report
//	GET    /system/gpus             GPU status from the datastore
//	POST   /function/{name}         invoke
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness: per-cell schedulable/degraded state
//	GET    /debug/pprof/*           runtime profiling (CPU, heap, block, mutex)
//
// On a multi-cell gateway the per-cluster admin endpoints
// (/system/scale, /system/autoscaler, /system/metrics) address one cell
// via ?cell=N (default 0).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/system/functions", g.handleFunctions)
	mux.HandleFunc("/system/functions/", g.handleFunction)
	mux.HandleFunc("/system/scale", g.handleClusterScale)
	mux.HandleFunc("/system/autoscaler", g.handleAutoscaler)
	mux.HandleFunc("/system/cells", g.handleCells)
	mux.HandleFunc("/system/scale/", g.handleScale)
	mux.HandleFunc("/system/metrics", g.handleMetrics)
	mux.HandleFunc("/system/gpus", g.handleGPUs)
	mux.HandleFunc("/function/", g.handleInvoke)
	mux.HandleFunc("/metrics", g.handlePromMetrics)
	// The standard pprof surface, registered explicitly: the gateway
	// serves its own mux, so the net/http/pprof side effects on
	// http.DefaultServeMux never reach production traffic.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", g.handleReadyz)
	return mux
}

// readyCellStatus is one cell's row in the /readyz report.
type readyCellStatus struct {
	Cell int `json:"cell"`
	// Ready: the cell can schedule work (at least one active GPU).
	Ready bool `json:"ready"`
	// Degraded: schedulable but impaired — GPUs have failed, or the
	// admission gate is saturated (every concurrency slot held).
	Degraded        bool `json:"degraded,omitempty"`
	SchedulableGPUs int  `json:"schedulableGPUs"`
	// FailedGPUs is the cell's cumulative crash-fault count.
	FailedGPUs         int64 `json:"failedGPUs,omitempty"`
	AdmissionSaturated bool  `json:"admissionSaturated,omitempty"`
}

// handleReadyz is readiness, distinct from /healthz liveness: the
// process being up does not mean the fleet can serve. Each cell reports
// ready (schedulable capacity exists) and degraded (failed GPUs or a
// saturated admission gate); the endpoint returns 503 when any cell is
// unschedulable, so load balancers stop routing to a gateway whose
// fleet has crashed out from under it.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var admitRows []AdmissionCellStats
	if g.admit != nil {
		admitRows = g.admit.stats()
	}
	cells := make([]readyCellStatus, len(g.cells))
	allReady := true
	for i, c := range g.cells {
		st := readyCellStatus{Cell: i, SchedulableGPUs: c.SchedulableGPUs()}
		for _, n := range c.GPUFailures() {
			st.FailedGPUs += n
		}
		if g.admit != nil && i < len(admitRows) {
			st.AdmissionSaturated = admitRows[i].Inflight >= g.admit.cfg.MaxConcurrent
		}
		st.Ready = st.SchedulableGPUs > 0
		st.Degraded = st.Ready && (st.FailedGPUs > 0 || st.AdmissionSaturated)
		allReady = allReady && st.Ready
		cells[i] = st
	}
	status := http.StatusOK
	if !allReady {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": allReady, "cells": cells})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		// Retry-After is delay-seconds (RFC 9110): round up so clients
		// never retry before the hinted drain time.
		secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (g *Gateway) handleFunctions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, g.registry.List())
	case http.MethodPost, http.MethodPut:
		var spec FunctionSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		var fn *Function
		var err error
		if r.Method == http.MethodPost {
			fn, err = g.Deploy(spec)
		} else {
			fn, err = g.registry.Update(spec)
			if err == nil {
				g.publish(fn)
			}
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, fn)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleFunction(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/system/functions/")
	if name == "" {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		fn, err := g.registry.Get(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, fn)
	case http.MethodDelete:
		if err := g.Remove(name); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleScale(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/system/scale/")
	var body struct {
		Replicas int `json:"replicas"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	fn, err := g.Scale(name, body.Replicas)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, fn)
}

// cellFor resolves the admin ?cell=N selector (default: cell 0).
func (g *Gateway) cellFor(r *http.Request) (*cluster.Cluster, error) {
	q := r.URL.Query().Get("cell")
	if q == "" {
		return g.cells[0], nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 || n >= len(g.cells) {
		return nil, fmt.Errorf("faas: cell %q out of range [0,%d)", q, len(g.cells))
	}
	return g.cells[n], nil
}

// handleCells summarizes the sharded fleet: one row per cell (device
// counts, routed requests) plus the router policy.
func (g *Gateway) handleCells(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	routed := g.infer.RoutedByCell()
	type cellRow struct {
		Cell   int            `json:"cell"`
		GPUs   int            `json:"gpus"`
		Counts autoscale.Size `json:"counts"`
		Routed int64          `json:"routed"`
	}
	rows := make([]cellRow, len(g.cells))
	for i, c := range g.cells {
		rows[i] = cellRow{
			Cell:   i,
			GPUs:   len(c.GPUIDs()),
			Counts: c.FleetCounts(),
		}
		if i < len(routed) {
			rows[i].Routed = routed[i]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cells":  len(g.cells),
		"router": g.infer.RouterPolicy(),
		"rows":   rows,
	})
}

// handleClusterScale is the elastic-membership admin endpoint: GET
// reports the fleet breakdown; POST reconciles the fleet to a target
// size (provision with cold start / drain-decommission). ?cell=N
// selects the cell (default 0).
func (g *Gateway) handleClusterScale(w http.ResponseWriter, r *http.Request) {
	cell, err := g.cellFor(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	switch r.Method {
	case http.MethodGet:
		bound, live := cell.OrdStatus()
		writeJSON(w, http.StatusOK, map[string]any{
			"counts":  cell.FleetCounts(),
			"classes": cell.ClassStatuses(),
			"gpus":    cell.GPUIDs(),
			// Registration-ordinal pressure: ordinals are never reused,
			// so dead = bound − live is the state the ROADMAP's ordinal
			// compaction would reclaim.
			"ords": map[string]int{"bound": bound, "live": live, "dead": bound - live},
		})
	case http.MethodPost:
		var body struct {
			Target      int   `json:"target"`
			ColdStartMs int64 `json:"coldStartMs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if body.ColdStartMs < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "negative coldStartMs"})
			return
		}
		added, removed, err := cell.ScaleTo(body.Target, time.Duration(body.ColdStartMs)*time.Millisecond)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"added":   added,
			"removed": removed,
			"counts":  cell.FleetCounts(),
		})
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleAutoscaler exposes the attached autoscaler: GET returns status
// (policy, last signal, scale-event log), POST toggles it. ?cell=N
// selects the cell (default 0).
func (g *Gateway) handleAutoscaler(w http.ResponseWriter, r *http.Request) {
	cell, err := g.cellFor(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	switch r.Method {
	case http.MethodGet:
		st, ok := cell.AutoscalerStatus()
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no autoscaler attached"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodPost:
		var body struct {
			Enabled *bool `json:"enabled"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if body.Enabled == nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing enabled"})
			return
		}
		if !cell.SetAutoscalerEnabled(*body.Enabled) {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no autoscaler attached"})
			return
		}
		st, _ := cell.AutoscalerStatus()
		writeJSON(w, http.StatusAccepted, st)
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	cell, err := g.cellFor(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, cell.Snapshot())
}

func (g *Gateway) handleGPUs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	type gpuStatus struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	var out []gpuStatus
	for _, kv := range g.store.List("gpu/") {
		id := strings.TrimSuffix(strings.TrimPrefix(kv.Key, "gpu/"), "/status")
		out = append(out, gpuStatus{ID: id, Status: string(kv.Value)})
	}
	writeJSON(w, http.StatusOK, out)
}

// bodyPool recycles invocation body buffers: the HTTP hot path reads
// each request into a pooled buffer and returns it once the response
// has been written (the echo handler aliases the buffer until then).
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	// MaxBytesReader (not LimitReader) so an oversized body is an
	// explicit 413, not a silent truncation handed to the function.
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, g.maxBodyBytes)); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	resp, err := g.Invoke(name, InvokeRequest{Body: buf.Bytes(), Tenant: r.Header.Get("X-Tenant")})
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if len(resp.Body) > 0 {
		w.Write(resp.Body)
	} else {
		_ = json.NewEncoder(w).Encode(resp)
	}
}
