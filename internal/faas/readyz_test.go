package faas

// Readiness and failure-metrics tests: /readyz must track schedulable
// capacity (not process liveness), and /metrics must expose the
// per-reason failure split plus per-GPU crash counters.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpufaas/internal/cluster"
)

// getReadyz GETs /readyz and decodes the body.
func getReadyz(t *testing.T, srv *httptest.Server) (int, map[string]any) {
	t.Helper()
	res, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("non-JSON /readyz body %q: %v", body, err)
	}
	return res.StatusCode, out
}

// TestReadyzTracksFleetHealth walks a single-cell gateway from healthy
// through degraded to unschedulable and back via elastic re-add.
func TestReadyzTracksFleetHealth(t *testing.T) {
	g, err := NewGateway(GatewayConfig{
		Policy:        "LALBO3",
		Nodes:         1,
		GPUsPerNode:   2,
		TimeScale:     0.001,
		InvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	status, body := getReadyz(t, srv)
	if status != http.StatusOK || body["ready"] != true {
		t.Fatalf("healthy gateway: status %d, body %v", status, body)
	}
	cell0 := body["cells"].([]any)[0].(map[string]any)
	if cell0["schedulableGPUs"].(float64) != 2 || cell0["ready"] != true || cell0["degraded"] == true {
		t.Fatalf("healthy cell row = %v", cell0)
	}

	// One GPU crashes: still ready, but degraded with a failure count.
	if err := g.Cluster().FailGPU("node0/gpu0"); err != nil {
		t.Fatal(err)
	}
	status, body = getReadyz(t, srv)
	if status != http.StatusOK || body["ready"] != true {
		t.Fatalf("degraded gateway: status %d, body %v", status, body)
	}
	cell0 = body["cells"].([]any)[0].(map[string]any)
	if cell0["degraded"] != true || cell0["failedGPUs"].(float64) != 1 || cell0["schedulableGPUs"].(float64) != 1 {
		t.Fatalf("degraded cell row = %v", cell0)
	}

	// The last GPU crashes: the cell is unschedulable and /readyz flips
	// to 503 while /healthz (liveness) stays 200.
	if err := g.Cluster().FailGPU("node0/gpu1"); err != nil {
		t.Fatal(err)
	}
	status, body = getReadyz(t, srv)
	if status != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("unschedulable gateway: status %d, body %v", status, body)
	}
	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d while unschedulable; liveness must not track capacity", res.StatusCode)
	}

	// Capacity returns (operator or autoscaler re-adds a GPU): ready again.
	if _, err := g.Cluster().AddGPU("", 0); err != nil {
		t.Fatal(err)
	}
	if status, _ = getReadyz(t, srv); status != http.StatusOK {
		t.Errorf("recovered gateway /readyz = %d", status)
	}
}

// TestFailureMetricsExposition pins the per-reason failure split and the
// per-GPU crash counters in the Prometheus exposition.
func TestFailureMetricsExposition(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	fams := scrape(t, srv)
	failed, ok := fams["gpufaas_requests_failed_total"]
	if !ok {
		t.Fatal("gpufaas_requests_failed_total missing")
	}
	if failed.typ != "counter" {
		t.Errorf("failed_total TYPE = %s", failed.typ)
	}
	// Every drop reason is pre-registered at zero before any failure.
	for _, reason := range cluster.Reasons {
		key := `gpufaas_requests_failed_total{reason="` + reason + `"}`
		v, ok := failed.samples[key]
		if !ok {
			t.Errorf("reason %q not pre-registered", reason)
		} else if v != 0 {
			t.Errorf("%s = %g on a fresh gateway", key, v)
		}
	}
	if _, ok := failed.samples["gpufaas_requests_failed_total"]; ok {
		t.Error("unlabelled failed_total sample still exposed")
	}
	// No crashes yet: the family is declared but carries no series.
	gf, ok := fams["gpufaas_gpu_failures_total"]
	if !ok {
		t.Fatal("gpufaas_gpu_failures_total missing")
	}
	if len(gf.samples) != 0 {
		t.Errorf("crash counters on a fresh gateway: %v", gf.samples)
	}

	if err := g.Cluster().FailGPU("node0/gpu2"); err != nil {
		t.Fatal(err)
	}
	fams = scrape(t, srv)
	key := `gpufaas_gpu_failures_total{gpu="node0/gpu2"}`
	if v := fams["gpufaas_gpu_failures_total"].samples[key]; v != 1 {
		t.Errorf("%s = %g, want 1", key, v)
	}
}
