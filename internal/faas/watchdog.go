package faas

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/dataset"
	"gpufaas/internal/datastore"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/multicell"
	"gpufaas/internal/nn"
	"gpufaas/internal/sim"
	"gpufaas/internal/tensor"
	"gpufaas/internal/trace"
)

// Result re-exports the GPU Manager's completion record.
type Result = gpumgr.Result

// InvokeRequest is the payload a function receives.
type InvokeRequest struct {
	// Body is the raw request body (echo handler returns it).
	Body []byte
	// Images is the inference input batch; when empty, the handler
	// draws BatchSize images from the shared evaluation pool.
	Images []dataset.Image
	// Tenant overrides the function spec's tenant for admission-control
	// token buckets (the HTTP layer fills it from the X-Tenant header).
	Tenant string
}

// InvokeResponse is a function's result.
type InvokeResponse struct {
	// Body is the raw response (echo) or JSON-encoded predictions
	// (inference).
	Body []byte
	// Predictions are the per-input class indices (inference only).
	Predictions []int `json:"predictions,omitempty"`
	// GPU, Hit and timings describe the GPU execution (inference only).
	GPU          string        `json:"gpu,omitempty"`
	Hit          bool          `json:"hit"`
	QueueWait    time.Duration `json:"queueWait"`
	LoadTime     time.Duration `json:"loadTime"`
	InferTime    time.Duration `json:"inferTime"`
	TotalLatency time.Duration `json:"totalLatency"`
}

// Watchdog starts and monitors the function inside its container (Fig. 1):
// it receives invocations from the Gateway, executes the handler, and
// records execution metrics to the Datastore. Metric timestamps come from
// the injected clock, so under a simulated clock the recorded metrics are
// deterministic; seq disambiguates invocations sharing a clock instant.
type Watchdog struct {
	spec    FunctionSpec
	infer   *InferenceClient
	store   *datastore.Store
	clock   sim.Clock
	seq     atomic.Int64
	netOnce sync.Once
	net     *nn.Network
	netErr  error
}

// NewWatchdog builds a watchdog for a function. infer may be nil for
// non-GPU functions; store may be nil to disable metric recording. clock
// stamps the recorded metrics (the gateway passes its cluster clock); nil
// falls back to a fresh wall clock.
func NewWatchdog(spec FunctionSpec, infer *InferenceClient, store *datastore.Store, clock sim.Clock) *Watchdog {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &Watchdog{spec: spec, infer: infer, store: store, clock: clock}
}

// Handle executes one invocation.
func (w *Watchdog) Handle(req InvokeRequest) (InvokeResponse, error) {
	start := w.clock.Now()
	var resp InvokeResponse
	var err error
	switch w.spec.Handler {
	case HandlerEcho:
		resp = InvokeResponse{Body: req.Body}
	case HandlerInference:
		resp, err = w.handleInference(req)
	default:
		err = fmt.Errorf("faas: watchdog has no handler %q", w.spec.Handler)
	}
	if w.store != nil {
		status := "ok"
		if err != nil {
			status = "error"
		}
		w.record(status, start, resp.TotalLatency)
	}
	return resp, err
}

// recBufPool recycles the invocation-record scratch buffer; the record
// itself is copied by datastore.Put, so the buffer is reusable the
// moment record returns.
var recBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 192); return &b }}

// record writes the invocation metric record. The JSON is appended by
// hand (same alphabetical key order encoding/json produced for the map
// form) so the per-invocation cost is one key-string allocation instead
// of a map, a Marshal and the reflect walk behind it.
func (w *Watchdog) record(status string, start sim.Time, latency time.Duration) {
	bp := recBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, "metrics/invocations/"...)
	buf = append(buf, w.spec.Name...)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, int64(start), 10)
	buf = append(buf, '-')
	buf = strconv.AppendInt(buf, w.seq.Add(1), 10)
	key := string(buf)

	buf = buf[:0]
	buf = append(buf, `{"function":`...)
	buf = strconv.AppendQuote(buf, w.spec.Name)
	buf = append(buf, `,"latencyMs":`...)
	buf = strconv.AppendInt(buf, latency.Milliseconds(), 10)
	buf = append(buf, `,"status":"`...)
	buf = append(buf, status...)
	buf = append(buf, `","wallMs":`...)
	buf = strconv.AppendInt(buf, time.Duration(w.clock.Now()-start).Milliseconds(), 10)
	buf = append(buf, '}')
	w.store.Put(key, buf, 0)
	*bp = buf[:0]
	recBufPool.Put(bp)
}

// handleInference is the ML-inference function body. With the GPU flag
// set, the model load + predict calls go through the InferenceClient —
// the §III-A interface replacement — which schedules them onto the GPU
// cluster; the actual class predictions are computed by the scaled CNN on
// the CPU (the simulated GPU provides timing, not arithmetic).
func (w *Watchdog) handleInference(req InvokeRequest) (InvokeResponse, error) {
	if w.spec.GPUEnabled {
		if w.infer == nil {
			return InvokeResponse{}, errors.New("faas: GPU function without inference client")
		}
	}
	imgs := req.Images
	if len(imgs) == 0 {
		pool, err := sharedEvalPool()
		if err != nil {
			return InvokeResponse{}, err
		}
		imgs, err = dataset.Batch(pool, 0, w.spec.BatchSize)
		if err != nil {
			return InvokeResponse{}, err
		}
	}
	x, err := dataset.ToTensor(imgs, nn.InputSize)
	if err != nil {
		return InvokeResponse{}, err
	}

	var gpuRes gpumgr.Result
	if w.spec.GPUEnabled {
		gpuRes, err = w.infer.Predict(w.spec, len(imgs))
		if err != nil {
			return InvokeResponse{}, err
		}
	}
	preds, err := w.predictCPU(x)
	if err != nil {
		return InvokeResponse{}, err
	}
	resp := InvokeResponse{
		Predictions: preds,
		GPU:         gpuRes.GPU,
		Hit:         gpuRes.Hit,
		LoadTime:    gpuRes.LoadTime,
		InferTime:   gpuRes.InferTime,
	}
	if w.spec.GPUEnabled {
		resp.TotalLatency = gpuRes.Latency()
		resp.QueueWait = resp.TotalLatency - gpuRes.LoadTime - gpuRes.InferTime
	}
	resp.Body, err = json.Marshal(resp)
	return resp, err
}

// predictCPU lazily builds the scaled network and runs the forward pass.
func (w *Watchdog) predictCPU(x *tensor.Tensor) ([]int, error) {
	w.netOnce.Do(func() {
		w.net, w.netErr = nn.Build(w.spec.Model, seedFor(w.spec.Model))
	})
	if w.netErr != nil {
		return nil, w.netErr
	}
	return w.net.Predict(x)
}

var (
	evalPoolOnce sync.Once
	evalPool     []dataset.Image
	evalPoolErr  error
)

// sharedEvalPool lazily builds the paper's 150-image pool once per
// process; invocations without an explicit input batch draw from it.
func sharedEvalPool() ([]dataset.Image, error) {
	evalPoolOnce.Do(func() {
		evalPool, evalPoolErr = dataset.EvalPool(1)
	})
	return evalPool, evalPoolErr
}

func seedFor(model string) int64 {
	var h int64 = 1469598103934665603
	for _, b := range []byte(model) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h
}

// InferenceClient is the customized interface that replaces
// torch.load()/model(input) in GPU-enabled functions (§III-A): it forwards
// load+predict to the GPU Manager via the Scheduler and blocks until the
// inference completes. On a multi-cell gateway one client fronts every
// cell: the front-door router picks the cell per Predict, and the single
// request-ID counter keeps waiter routing and datastore latency keys
// unique across the fleet.
//
// The live request path is pooled end to end: core.Request objects come
// from a RequestArena (acquired at Predict, released when the
// completion or drop routes back — the GPU manager copies every request
// field into the Result at dispatch, so nothing references the object
// after that), and the per-call outcome channels and timeout timers
// recycle through sync.Pools. In steady state a Predict allocates
// nothing.
type InferenceClient struct {
	cells   []*cluster.Cluster
	router  *multicell.Router // nil: everything goes to cells[0]
	clock   sim.Clock
	timeout time.Duration

	mu       sync.Mutex
	nextID   int64
	routed   []int64
	waiters  map[int64]chan predictOutcome
	inflight map[int64]*core.Request // submitted, not yet completed/dropped
	arena    core.RequestArena       // guarded by mu: the client is the live path's serialization point
	chPool   sync.Pool
}

// predictOutcome is what Route/Drop deliver to a waiting Predict.
type predictOutcome struct {
	res gpumgr.Result
	err error
}

// NewInferenceClient wires a client to a live-mode cluster. The caller
// must register Route as the cluster's OnResult hook (WithResultHook /
// Config.OnResult). timeout bounds each Predict.
func NewInferenceClient(c *cluster.Cluster, clock sim.Clock, timeout time.Duration) *InferenceClient {
	return NewCellInferenceClient([]*cluster.Cluster{c}, nil, clock, timeout)
}

// NewCellInferenceClient wires a client across a sharded fleet. router
// may be nil when there is a single cell; otherwise it picks the cell
// per request (the client serializes access to it). Route must be
// registered as EVERY cell's OnResult hook.
func NewCellInferenceClient(cells []*cluster.Cluster, router *multicell.Router, clock sim.Clock, timeout time.Duration) *InferenceClient {
	return &InferenceClient{
		cells:    cells,
		router:   router,
		clock:    clock,
		timeout:  timeout,
		routed:   make([]int64, len(cells)),
		waiters:  make(map[int64]chan predictOutcome),
		inflight: make(map[int64]*core.Request),
		chPool:   sync.Pool{New: func() any { return make(chan predictOutcome, 1) }},
	}
}

// ArenaStats snapshots the live request arena's counters.
func (ic *InferenceClient) ArenaStats() core.ArenaStats {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.arena.Stats()
}

// releaseLocked recycles an in-flight request. Callers hold ic.mu and
// must know the scheduler is done with the object (its completion or
// drop has been reported).
func (ic *InferenceClient) releaseLocked(id int64) {
	if req, ok := ic.inflight[id]; ok {
		delete(ic.inflight, id)
		ic.arena.Put(req)
	}
}

// RouterPolicy names the front-door policy ("" for a single cell).
func (ic *InferenceClient) RouterPolicy() string {
	if ic.router == nil {
		return ""
	}
	return ic.router.Config().Policy.String()
}

// routerPolicyValue is RouterPolicy as a multicell.Policy (hash when no
// router is attached).
func (ic *InferenceClient) routerPolicyValue() multicell.Policy {
	if ic.router == nil {
		return multicell.RouteHash
	}
	return ic.router.Config().Policy
}

// RoutedByCell reports how many Predicts each cell has received.
func (ic *InferenceClient) RoutedByCell() []int64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return append([]int64(nil), ic.routed...)
}

// Route delivers completion results to waiting Predict calls and
// recycles the completed request into the arena; it is the cluster's
// OnResult hook.
func (ic *InferenceClient) Route(res gpumgr.Result) {
	ic.mu.Lock()
	ch, ok := ic.waiters[res.ReqID]
	if ok {
		delete(ic.waiters, res.ReqID)
	}
	ic.releaseLocked(res.ReqID)
	ic.mu.Unlock()
	if ok {
		ch <- predictOutcome{res: res}
	}
}

// Drop fails a waiting Predict whose dispatch was rejected (per-tenant
// GPU quota, impossible model) and recycles the request; it is the
// cluster's OnDrop hook. Without it the waiter would hold its arena
// slot until the invoke timeout.
func (ic *InferenceClient) Drop(id int64, cause error) {
	ic.mu.Lock()
	ch, ok := ic.waiters[id]
	if ok {
		delete(ic.waiters, id)
	}
	ic.releaseLocked(id)
	ic.mu.Unlock()
	if ok {
		ch <- predictOutcome{err: fmt.Errorf("faas: inference %d dropped: %w", id, cause)}
	}
}

// Predict schedules one inference of the function's model and waits for
// completion.
func (ic *InferenceClient) Predict(spec FunctionSpec, batch int) (gpumgr.Result, error) {
	arrival := ic.clock.Now()
	ic.mu.Lock()
	ic.nextID++
	id := ic.nextID
	ch := ic.chPool.Get().(chan predictOutcome)
	ic.waiters[id] = ch
	cell := 0
	if ic.router != nil {
		// The router is not safe for concurrent use; the client's lock
		// is its serialization point.
		cell = ic.router.Route(trace.Request{
			ID:        id,
			Function:  spec.Name,
			Model:     spec.Model,
			Arrival:   time.Duration(arrival),
			BatchSize: batch,
		})
	}
	ic.routed[cell]++
	req := ic.arena.Get()
	req.ID = id
	req.Function = spec.Name
	req.Model = spec.Model
	req.BatchSize = batch
	req.Arrival = arrival
	req.Tenant = spec.Tenant
	ic.inflight[id] = req
	ic.mu.Unlock()

	if err := ic.cells[cell].Submit(req); err != nil {
		// Enqueue failed: the request never reached the scheduler, so
		// no completion or drop can race the recycle here.
		ic.mu.Lock()
		delete(ic.waiters, id)
		ic.releaseLocked(id)
		ic.mu.Unlock()
		ic.chPool.Put(ch)
		return gpumgr.Result{}, err
	}
	t := getTimer(ic.timeout)
	select {
	case out := <-ch:
		stopTimer(t)
		ic.chPool.Put(ch)
		return out.res, out.err
	case <-t.C:
		putTimer(t) // fired and drained
		ic.mu.Lock()
		delete(ic.waiters, id)
		// The request stays in flight: the scheduler may still hold it,
		// so the eventual completion (or drop) does the recycle — and
		// may be sending into ch right now, which is why the channel is
		// not pooled either.
		ic.mu.Unlock()
		return gpumgr.Result{}, fmt.Errorf("faas: inference %d timed out after %v", id, ic.timeout)
	}
}

// DatastoreSink records GPU status transitions and completions into the
// Datastore, as the GPU Managers do in §III-C ("reports the latency to the
// Datastore... updates the status back to idle").
type DatastoreSink struct {
	Store *datastore.Store
	// Prefix namespaces the per-GPU status keys (a multi-cell gateway
	// uses "cellN/": every cell names its nodes node0..nodeN, so bare
	// GPU IDs collide fleet-wide). Completion latency keys need no
	// prefix — request IDs come from the shared inference client.
	Prefix string
}

// GPUStatus implements gpumgr.StatusSink.
func (s DatastoreSink) GPUStatus(gpuID string, busy bool, at sim.Time) {
	if s.Store == nil {
		return
	}
	v := "idle"
	if busy {
		v = "busy"
	}
	s.Store.Put("gpu/"+s.Prefix+gpuID+"/status", []byte(v), 0)
}

// GPURemoved implements gpumgr.GPURemovalSink: a decommissioned GPU's
// status key leaves the Datastore with it, so /system/gpus never lists
// phantom idle GPUs.
func (s DatastoreSink) GPURemoved(gpuID string, _ sim.Time) {
	if s.Store == nil {
		return
	}
	_, _ = s.Store.Delete("gpu/" + s.Prefix + gpuID + "/status")
}

// Completion implements gpumgr.StatusSink.
func (s DatastoreSink) Completion(res gpumgr.Result) {
	if s.Store == nil {
		return
	}
	rec, _ := json.Marshal(map[string]any{
		"function":  res.Function,
		"model":     res.Model,
		"gpu":       res.GPU,
		"hit":       res.Hit,
		"latencyMs": res.Latency().Milliseconds(),
		"loadMs":    res.LoadTime.Milliseconds(),
		"inferMs":   res.InferTime.Milliseconds(),
	})
	s.Store.Put(fmt.Sprintf("latency/%s/%d", res.Function, res.ReqID), rec, 0)
}
