package faas

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/dataset"
	"gpufaas/internal/datastore"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/multicell"
	"gpufaas/internal/nn"
	"gpufaas/internal/sim"
	"gpufaas/internal/tensor"
	"gpufaas/internal/trace"
)

// Result re-exports the GPU Manager's completion record.
type Result = gpumgr.Result

// InvokeRequest is the payload a function receives.
type InvokeRequest struct {
	// Body is the raw request body (echo handler returns it).
	Body []byte
	// Images is the inference input batch; when empty, the handler
	// draws BatchSize images from the shared evaluation pool.
	Images []dataset.Image
}

// InvokeResponse is a function's result.
type InvokeResponse struct {
	// Body is the raw response (echo) or JSON-encoded predictions
	// (inference).
	Body []byte
	// Predictions are the per-input class indices (inference only).
	Predictions []int `json:"predictions,omitempty"`
	// GPU, Hit and timings describe the GPU execution (inference only).
	GPU          string        `json:"gpu,omitempty"`
	Hit          bool          `json:"hit"`
	QueueWait    time.Duration `json:"queueWait"`
	LoadTime     time.Duration `json:"loadTime"`
	InferTime    time.Duration `json:"inferTime"`
	TotalLatency time.Duration `json:"totalLatency"`
}

// Watchdog starts and monitors the function inside its container (Fig. 1):
// it receives invocations from the Gateway, executes the handler, and
// records execution metrics to the Datastore. Metric timestamps come from
// the injected clock, so under a simulated clock the recorded metrics are
// deterministic; seq disambiguates invocations sharing a clock instant.
type Watchdog struct {
	spec    FunctionSpec
	infer   *InferenceClient
	store   *datastore.Store
	clock   sim.Clock
	seq     atomic.Int64
	netOnce sync.Once
	net     *nn.Network
	netErr  error
}

// NewWatchdog builds a watchdog for a function. infer may be nil for
// non-GPU functions; store may be nil to disable metric recording. clock
// stamps the recorded metrics (the gateway passes its cluster clock); nil
// falls back to a fresh wall clock.
func NewWatchdog(spec FunctionSpec, infer *InferenceClient, store *datastore.Store, clock sim.Clock) *Watchdog {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &Watchdog{spec: spec, infer: infer, store: store, clock: clock}
}

// Handle executes one invocation.
func (w *Watchdog) Handle(req InvokeRequest) (InvokeResponse, error) {
	start := w.clock.Now()
	var resp InvokeResponse
	var err error
	switch w.spec.Handler {
	case HandlerEcho:
		resp = InvokeResponse{Body: req.Body}
	case HandlerInference:
		resp, err = w.handleInference(req)
	default:
		err = fmt.Errorf("faas: watchdog has no handler %q", w.spec.Handler)
	}
	if w.store != nil {
		status := "ok"
		if err != nil {
			status = "error"
		}
		rec, _ := json.Marshal(map[string]any{
			"function":  w.spec.Name,
			"status":    status,
			"wallMs":    time.Duration(w.clock.Now() - start).Milliseconds(),
			"latencyMs": resp.TotalLatency.Milliseconds(),
		})
		key := fmt.Sprintf("metrics/invocations/%s/%d-%d",
			w.spec.Name, int64(start), w.seq.Add(1))
		w.store.Put(key, rec, 0)
	}
	return resp, err
}

// handleInference is the ML-inference function body. With the GPU flag
// set, the model load + predict calls go through the InferenceClient —
// the §III-A interface replacement — which schedules them onto the GPU
// cluster; the actual class predictions are computed by the scaled CNN on
// the CPU (the simulated GPU provides timing, not arithmetic).
func (w *Watchdog) handleInference(req InvokeRequest) (InvokeResponse, error) {
	if w.spec.GPUEnabled {
		if w.infer == nil {
			return InvokeResponse{}, errors.New("faas: GPU function without inference client")
		}
	}
	imgs := req.Images
	if len(imgs) == 0 {
		pool, err := sharedEvalPool()
		if err != nil {
			return InvokeResponse{}, err
		}
		imgs, err = dataset.Batch(pool, 0, w.spec.BatchSize)
		if err != nil {
			return InvokeResponse{}, err
		}
	}
	x, err := dataset.ToTensor(imgs, nn.InputSize)
	if err != nil {
		return InvokeResponse{}, err
	}

	var gpuRes gpumgr.Result
	if w.spec.GPUEnabled {
		gpuRes, err = w.infer.Predict(w.spec, len(imgs))
		if err != nil {
			return InvokeResponse{}, err
		}
	}
	preds, err := w.predictCPU(x)
	if err != nil {
		return InvokeResponse{}, err
	}
	resp := InvokeResponse{
		Predictions: preds,
		GPU:         gpuRes.GPU,
		Hit:         gpuRes.Hit,
		LoadTime:    gpuRes.LoadTime,
		InferTime:   gpuRes.InferTime,
	}
	if w.spec.GPUEnabled {
		resp.TotalLatency = gpuRes.Latency()
		resp.QueueWait = resp.TotalLatency - gpuRes.LoadTime - gpuRes.InferTime
	}
	resp.Body, err = json.Marshal(resp)
	return resp, err
}

// predictCPU lazily builds the scaled network and runs the forward pass.
func (w *Watchdog) predictCPU(x *tensor.Tensor) ([]int, error) {
	w.netOnce.Do(func() {
		w.net, w.netErr = nn.Build(w.spec.Model, seedFor(w.spec.Model))
	})
	if w.netErr != nil {
		return nil, w.netErr
	}
	return w.net.Predict(x)
}

var (
	evalPoolOnce sync.Once
	evalPool     []dataset.Image
	evalPoolErr  error
)

// sharedEvalPool lazily builds the paper's 150-image pool once per
// process; invocations without an explicit input batch draw from it.
func sharedEvalPool() ([]dataset.Image, error) {
	evalPoolOnce.Do(func() {
		evalPool, evalPoolErr = dataset.EvalPool(1)
	})
	return evalPool, evalPoolErr
}

func seedFor(model string) int64 {
	var h int64 = 1469598103934665603
	for _, b := range []byte(model) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h
}

// InferenceClient is the customized interface that replaces
// torch.load()/model(input) in GPU-enabled functions (§III-A): it forwards
// load+predict to the GPU Manager via the Scheduler and blocks until the
// inference completes. On a multi-cell gateway one client fronts every
// cell: the front-door router picks the cell per Predict, and the single
// request-ID counter keeps waiter routing and datastore latency keys
// unique across the fleet.
type InferenceClient struct {
	cells   []*cluster.Cluster
	router  *multicell.Router // nil: everything goes to cells[0]
	clock   sim.Clock
	timeout time.Duration

	mu      sync.Mutex
	nextID  int64
	routed  []int64
	waiters map[int64]chan gpumgr.Result
}

// NewInferenceClient wires a client to a live-mode cluster. The caller
// must register Route as the cluster's OnResult hook (WithResultHook /
// Config.OnResult). timeout bounds each Predict.
func NewInferenceClient(c *cluster.Cluster, clock sim.Clock, timeout time.Duration) *InferenceClient {
	return NewCellInferenceClient([]*cluster.Cluster{c}, nil, clock, timeout)
}

// NewCellInferenceClient wires a client across a sharded fleet. router
// may be nil when there is a single cell; otherwise it picks the cell
// per request (the client serializes access to it). Route must be
// registered as EVERY cell's OnResult hook.
func NewCellInferenceClient(cells []*cluster.Cluster, router *multicell.Router, clock sim.Clock, timeout time.Duration) *InferenceClient {
	return &InferenceClient{
		cells:   cells,
		router:  router,
		clock:   clock,
		timeout: timeout,
		routed:  make([]int64, len(cells)),
		waiters: make(map[int64]chan gpumgr.Result),
	}
}

// RouterPolicy names the front-door policy ("" for a single cell).
func (ic *InferenceClient) RouterPolicy() string {
	if ic.router == nil {
		return ""
	}
	return ic.router.Config().Policy.String()
}

// routerPolicyValue is RouterPolicy as a multicell.Policy (hash when no
// router is attached).
func (ic *InferenceClient) routerPolicyValue() multicell.Policy {
	if ic.router == nil {
		return multicell.RouteHash
	}
	return ic.router.Config().Policy
}

// RoutedByCell reports how many Predicts each cell has received.
func (ic *InferenceClient) RoutedByCell() []int64 {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return append([]int64(nil), ic.routed...)
}

// Route delivers completion results to waiting Predict calls; it is the
// cluster's OnResult hook.
func (ic *InferenceClient) Route(res gpumgr.Result) {
	ic.mu.Lock()
	ch, ok := ic.waiters[res.ReqID]
	if ok {
		delete(ic.waiters, res.ReqID)
	}
	ic.mu.Unlock()
	if ok {
		ch <- res
	}
}

// Predict schedules one inference of the function's model and waits for
// completion.
func (ic *InferenceClient) Predict(spec FunctionSpec, batch int) (gpumgr.Result, error) {
	arrival := ic.clock.Now()
	ic.mu.Lock()
	ic.nextID++
	id := ic.nextID
	ch := make(chan gpumgr.Result, 1)
	ic.waiters[id] = ch
	cell := 0
	if ic.router != nil {
		// The router is not safe for concurrent use; the client's lock
		// is its serialization point.
		cell = ic.router.Route(trace.Request{
			ID:        id,
			Function:  spec.Name,
			Model:     spec.Model,
			Arrival:   time.Duration(arrival),
			BatchSize: batch,
		})
	}
	ic.routed[cell]++
	ic.mu.Unlock()

	req := &core.Request{
		ID:        id,
		Function:  spec.Name,
		Model:     spec.Model,
		BatchSize: batch,
		Arrival:   arrival,
		Tenant:    spec.Tenant,
	}
	if err := ic.cells[cell].Submit(req); err != nil {
		ic.mu.Lock()
		delete(ic.waiters, id)
		ic.mu.Unlock()
		return gpumgr.Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-time.After(ic.timeout):
		ic.mu.Lock()
		delete(ic.waiters, id)
		ic.mu.Unlock()
		return gpumgr.Result{}, fmt.Errorf("faas: inference %d timed out after %v", id, ic.timeout)
	}
}

// DatastoreSink records GPU status transitions and completions into the
// Datastore, as the GPU Managers do in §III-C ("reports the latency to the
// Datastore... updates the status back to idle").
type DatastoreSink struct {
	Store *datastore.Store
	// Prefix namespaces the per-GPU status keys (a multi-cell gateway
	// uses "cellN/": every cell names its nodes node0..nodeN, so bare
	// GPU IDs collide fleet-wide). Completion latency keys need no
	// prefix — request IDs come from the shared inference client.
	Prefix string
}

// GPUStatus implements gpumgr.StatusSink.
func (s DatastoreSink) GPUStatus(gpuID string, busy bool, at sim.Time) {
	if s.Store == nil {
		return
	}
	v := "idle"
	if busy {
		v = "busy"
	}
	s.Store.Put("gpu/"+s.Prefix+gpuID+"/status", []byte(v), 0)
}

// GPURemoved implements gpumgr.GPURemovalSink: a decommissioned GPU's
// status key leaves the Datastore with it, so /system/gpus never lists
// phantom idle GPUs.
func (s DatastoreSink) GPURemoved(gpuID string, _ sim.Time) {
	if s.Store == nil {
		return
	}
	_, _ = s.Store.Delete("gpu/" + s.Prefix + gpuID + "/status")
}

// Completion implements gpumgr.StatusSink.
func (s DatastoreSink) Completion(res gpumgr.Result) {
	if s.Store == nil {
		return
	}
	rec, _ := json.Marshal(map[string]any{
		"function":  res.Function,
		"model":     res.Model,
		"gpu":       res.GPU,
		"hit":       res.Hit,
		"latencyMs": res.Latency().Milliseconds(),
		"loadMs":    res.LoadTime.Milliseconds(),
		"inferMs":   res.InferTime.Milliseconds(),
	})
	s.Store.Put(fmt.Sprintf("latency/%s/%d", res.Function, res.ReqID), rec, 0)
}
