package faas

import (
	"encoding/json"
	"testing"
	"time"

	"gpufaas/internal/datastore"
)

// TestDatastoreWatchSeesGPULifecycle exercises the full Fig. 2 flow with a
// Datastore observer: a watcher on the gpu/ prefix must see the busy→idle
// transition that the GPU Manager reports around an inference, and the
// latency record must land under latency/.
func TestDatastoreWatchSeesGPULifecycle(t *testing.T) {
	g := testGateway(t)
	ch, cancel, err := g.Store().Watch("gpu/")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if _, err := g.Deploy(FunctionSpec{Name: "fn", GPUEnabled: true, Model: "alexnet", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("fn", InvokeRequest{}); err != nil {
		t.Fatal(err)
	}

	var sawBusy, sawIdle bool
	deadline := time.After(5 * time.Second)
	for !(sawBusy && sawIdle) {
		select {
		case ev := <-ch:
			if ev.Type != datastore.EventPut {
				continue
			}
			switch string(ev.Value) {
			case "busy":
				sawBusy = true
			case "idle":
				if sawBusy {
					sawIdle = true
				}
			}
		case <-deadline:
			t.Fatalf("watch timed out: busy=%v idle=%v", sawBusy, sawIdle)
		}
	}

	recs := g.Store().List("latency/fn/")
	if len(recs) != 1 {
		t.Fatalf("latency records = %d", len(recs))
	}
	var rec struct {
		Function  string `json:"function"`
		Model     string `json:"model"`
		Hit       bool   `json:"hit"`
		LatencyMs int64  `json:"latencyMs"`
	}
	if err := json.Unmarshal(recs[0].Value, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Function != "fn" || rec.Model != "alexnet" || rec.Hit {
		t.Errorf("record = %+v", rec)
	}
	if rec.LatencyMs <= 0 {
		t.Errorf("latency = %d ms", rec.LatencyMs)
	}
}

// TestInvocationMetricsRecorded verifies the Watchdog's own metric stream
// (Fig. 1: "Record function execution metrics").
func TestInvocationMetricsRecorded(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "fn2", GPUEnabled: true, Model: "resnet34", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := g.Invoke("fn2", InvokeRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if recs := g.Store().List("metrics/invocations/fn2/"); len(recs) != 3 {
		t.Errorf("invocation metrics = %d, want 3", len(recs))
	}
}
