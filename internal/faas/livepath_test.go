package faas

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testAdmitGateway builds a single-cell gateway with admission control.
func testAdmitGateway(t *testing.T, cfg AdmissionConfig) *Gateway {
	t.Helper()
	g, err := NewGateway(GatewayConfig{
		Policy:        "LALBO3",
		TimeScale:     0.001,
		InvokeTimeout: 10 * time.Second,
		Admission:     &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdmissionConfigValidate(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{Admission: &AdmissionConfig{}}); err == nil {
		t.Error("zero MaxConcurrent accepted")
	}
	if _, err := NewGateway(GatewayConfig{Admission: &AdmissionConfig{MaxConcurrent: 1, QueueDepth: -1}}); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := NewGateway(GatewayConfig{Admission: &AdmissionConfig{MaxConcurrent: 1, TenantRate: -1}}); err == nil {
		t.Error("negative tenant rate accepted")
	}
}

// TestAdmissionQueueFull pins the queue_full shed: with the slot held
// and no queue, the next request is rejected immediately with a
// ShedError carrying a Retry-After hint.
func TestAdmissionQueueFull(t *testing.T) {
	a, err := newAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.admit(0, "")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if _, err := a.admit(0, ""); err == nil {
		t.Fatal("second admit succeeded with the slot held and no queue")
	} else if shed, ok := err.(*ShedError); !ok {
		t.Fatalf("err = %T, want *ShedError", err)
	} else {
		if shed.Reason != "queue_full" {
			t.Errorf("reason = %q, want queue_full", shed.Reason)
		}
		if shed.RetryAfter <= 0 {
			t.Errorf("RetryAfter = %v, want > 0", shed.RetryAfter)
		}
	}
	ca.release(time.Now())
	if _, err := a.admit(0, ""); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	st := a.stats()[0]
	if st.ShedQueueFull != 1 || st.ShedTotal() != 1 {
		t.Errorf("stats = %+v, want one queue_full shed", st)
	}
}

// TestAdmissionDeadline pins both deadline sheds: the waiting form (a
// queued request times out after MaxWait) and the immediate form (the
// EWMA estimator predicts the wait exceeds MaxWait, so the request
// never queues at all).
func TestAdmissionDeadline(t *testing.T) {
	a, err := newAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 8, MaxWait: 20 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.admit(0, ""); err != nil { // hold the slot
		t.Fatal(err)
	}
	start := time.Now()
	_, err = a.admit(0, "")
	shed, ok := err.(*ShedError)
	if !ok || shed.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline shed", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Errorf("shed after %v, want ~MaxWait (cold EWMA must wait, not guess)", waited)
	}

	// Teach the estimator a service time far beyond the deadline: the
	// next overflow is shed without waiting.
	a.cells[0].ewmaNs.Store(int64(time.Second))
	start = time.Now()
	if _, err := a.admit(0, ""); err == nil {
		t.Fatal("admit succeeded past a saturated estimator")
	}
	if waited := time.Since(start); waited > 10*time.Millisecond {
		t.Errorf("immediate shed took %v, want instant", waited)
	}
	if st := a.stats()[0]; st.ShedDeadline != 2 {
		t.Errorf("ShedDeadline = %d, want 2", st.ShedDeadline)
	}
}

// TestAdmissionTenantBucket pins the §VI-style per-tenant token
// buckets: burst tokens admit, then the tenant is shed while other
// tenants are untouched.
func TestAdmissionTenantBucket(t *testing.T) {
	a, err := newAdmission(AdmissionConfig{MaxConcurrent: 8, TenantRate: 0.001, TenantBurst: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ca, err := a.admit(0, "alice")
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		ca.release(time.Now())
	}
	_, err = a.admit(0, "alice")
	shed, ok := err.(*ShedError)
	if !ok || shed.Reason != "tenant_quota" {
		t.Fatalf("err = %v, want tenant_quota shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", shed.RetryAfter)
	}
	if _, err := a.admit(0, "bob"); err != nil {
		t.Errorf("bob shed by alice's bucket: %v", err)
	}
	if st := a.stats()[0]; st.ShedTenant != 1 {
		t.Errorf("ShedTenant = %d, want 1", st.ShedTenant)
	}
}

// TestInvokeShedHTTP pins the HTTP mapping: a shed invocation is 429
// Too Many Requests with a Retry-After delay-seconds header.
func TestInvokeShedHTTP(t *testing.T) {
	g := testAdmitGateway(t, AdmissionConfig{MaxConcurrent: 1, QueueDepth: 0})
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	// Occupy the cell's only slot so the HTTP invocation overflows.
	g.admit.cells[0].slots <- struct{}{}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	res, err := http.Post(srv.URL+"/function/echo", "application/json", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", res.StatusCode)
	}
	ra, err := strconv.Atoi(res.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", res.Header.Get("Retry-After"))
	}
	<-g.admit.cells[0].slots
	res2, err := http.Post(srv.URL+"/function/echo", "application/json", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Errorf("status after slot freed = %d, want 200", res2.StatusCode)
	}
}

// TestInvokeTenantHeaderHTTP routes the X-Tenant header into the token
// buckets.
func TestInvokeTenantHeaderHTTP(t *testing.T) {
	g := testAdmitGateway(t, AdmissionConfig{MaxConcurrent: 8, TenantRate: 0.001, TenantBurst: 1})
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	post := func(tenant string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/function/echo", strings.NewReader("x"))
		req.Header.Set("X-Tenant", tenant)
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode
	}
	if s := post("alice"); s != http.StatusOK {
		t.Fatalf("alice #1 = %d", s)
	}
	if s := post("alice"); s != http.StatusTooManyRequests {
		t.Fatalf("alice #2 = %d, want 429 (burst 1 spent)", s)
	}
	if s := post("bob"); s != http.StatusOK {
		t.Fatalf("bob = %d, want 200 (own bucket)", s)
	}
}

// TestInvokeBodyLimit pins the handleInvoke bugfix: oversized bodies
// are an explicit 413, not a silent truncation.
func TestInvokeBodyLimit(t *testing.T) {
	g, err := NewGateway(GatewayConfig{TimeScale: 0.001, MaxBodyBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	res, err := http.Post(srv.URL+"/function/echo", "application/octet-stream", bytes.NewReader(make([]byte, 256)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", res.StatusCode)
	}

	payload := bytes.Repeat([]byte("a"), 128) // exactly at the cap
	res, err = http.Post(srv.URL+"/function/echo", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("at-cap body: status = %d, want 200", res.StatusCode)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("echo returned %d bytes, want the %d-byte payload intact", len(body), len(payload))
	}
}

// TestPrometheusMetricsAdmission extends the exposition contract to the
// admission series: shed counters (by reason and cell) and the
// queue-depth/in-flight gauges parse cleanly and carry the shed we
// induce.
func TestPrometheusMetricsAdmission(t *testing.T) {
	g := testAdmitGateway(t, AdmissionConfig{MaxConcurrent: 1, QueueDepth: 0})
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	g.admit.cells[0].slots <- struct{}{}
	if _, err := g.Invoke("echo", InvokeRequest{}); err == nil {
		t.Fatal("invoke admitted with the slot held")
	}
	<-g.admit.cells[0].slots

	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	fams := scrape(t, srv)
	for fam, typ := range map[string]string{
		"gpufaas_requests_shed_total":   "counter",
		"gpufaas_admission_queue_depth": "gauge",
		"gpufaas_admission_inflight":    "gauge",
	} {
		got, ok := fams[fam]
		if !ok {
			t.Errorf("family %s missing", fam)
			continue
		}
		if got.typ != typ {
			t.Errorf("%s: TYPE %s, want %s", fam, got.typ, typ)
		}
	}
	shed := fams["gpufaas_requests_shed_total"].samples
	if v := shed[`gpufaas_requests_shed_total{reason="queue_full",cell="0"}`]; v != 1 {
		t.Errorf("queue_full shed counter = %g, want 1", v)
	}
	// Every reason appears even at zero, so rate() has an origin.
	for _, reason := range []string{"deadline", "tenant_quota"} {
		key := fmt.Sprintf(`gpufaas_requests_shed_total{reason=%q,cell="0"}`, reason)
		if v, ok := shed[key]; !ok || v != 0 {
			t.Errorf("%s = %g (present=%v), want 0", key, v, ok)
		}
	}
	if v := fams["gpufaas_admission_queue_depth"].samples[`gpufaas_admission_queue_depth{cell="0"}`]; v != 0 {
		t.Errorf("queue depth = %g, want 0 at idle", v)
	}
}

// TestArenaSteadyState pins the allocation discipline on the GPU path:
// sequential invocations share one arena request — Allocated stays at
// the peak in-flight count (1) while Reused grows.
func TestArenaSteadyState(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "fn", GPUEnabled: true, Model: "resnet18", BatchSize: 2}); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := g.Invoke("fn", InvokeRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	st := g.ArenaStats()
	if st.Allocated != 1 {
		t.Errorf("Allocated = %d, want 1 (sequential invokes share one request)", st.Allocated)
	}
	if st.Reused != n-1 {
		t.Errorf("Reused = %d, want %d", st.Reused, n-1)
	}
	if st.Live != 0 {
		t.Errorf("Live = %d, want 0 after drain", st.Live)
	}
}

// TestDropFailsFast pins the OnDrop hook: a dispatch the GPU manager
// rejects (model cannot fit the device even after evicting everything)
// fails the invocation immediately instead of holding the waiter — and
// its arena slot — until the invoke timeout.
func TestDropFailsFast(t *testing.T) {
	g, err := NewGateway(GatewayConfig{
		TimeScale:     0.001,
		GPUMemory:     1, // no model fits: every dispatch drops
		InvokeTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Deploy(FunctionSpec{Name: "fn", GPUEnabled: true, Model: "resnet18", BatchSize: 2}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = g.Invoke("fn", InvokeRequest{})
	if err == nil {
		t.Fatal("invoke succeeded on a cluster no model fits")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Errorf("err = %v, want a dropped-dispatch error", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("drop took %v — waiter rode out the timeout instead of failing fast", waited)
	}
	if st := g.ArenaStats(); st.Live != 0 {
		t.Errorf("arena Live = %d, want 0 (drop must recycle)", st.Live)
	}
}

// TestInvokeParallelChurn runs concurrent invocations against
// Deploy/Remove/Scale/Update churn; under -race this pins the lock-free
// hot path (satellite: the old global mutex is gone, so nothing
// serializes — or protects — cross-function state by accident).
func TestInvokeParallelChurn(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "stable", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	// Fixed per-worker iteration counts (not run-until-stopped): on a
	// single-CPU runner a stop-channel loop can close before the workers
	// are ever scheduled, proving nothing.
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := g.Invoke("stable", InvokeRequest{Body: []byte("x")}); err != nil {
					t.Errorf("invoke stable: %v", err)
					return
				}
			}
		}()
	}
	// Churn other functions and rescale the stable one while the
	// invokers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("churn-%d", i%4)
			if _, err := g.Deploy(FunctionSpec{Name: name, Handler: HandlerEcho}); err != nil {
				t.Errorf("deploy %s: %v", name, err)
				return
			}
			if _, err := g.Invoke(name, InvokeRequest{}); err != nil {
				t.Errorf("invoke %s: %v", name, err)
				return
			}
			if _, err := g.Scale("stable", i%3+1); err != nil {
				t.Errorf("scale: %v", err)
				return
			}
			if err := g.Remove(name); err != nil {
				t.Errorf("remove %s: %v", name, err)
				return
			}
		}
	}()
	wg.Wait()
	fn, err := g.registry.Get("stable")
	if err != nil {
		t.Fatal(err)
	}
	if fn.Invocations != workers*perWorker {
		t.Errorf("stable invocations = %d, want %d (atomic counter must not drop under churn)", fn.Invocations, workers*perWorker)
	}
}

// TestGatewayInvokeAllocs pins the steady-state allocation cost of one
// live invocation on the echo path (admission enabled): the watchdog's
// metric record — one key string plus the datastore's defensive value
// copy and KV entry — is the only per-invocation allocation left. The
// bound has headroom for map-growth amortization; reintroducing a
// per-invoke request allocation, JSON marshal, or unpooled
// channel/timer blows well past it.
func TestGatewayInvokeAllocs(t *testing.T) {
	g := testAdmitGateway(t, AdmissionConfig{MaxConcurrent: 4, QueueDepth: 8})
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	req := InvokeRequest{Body: []byte("ping")}
	// Warm the pools (record buffer, admission state).
	for i := 0; i < 32; i++ {
		if _, err := g.Invoke("echo", req); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := g.Invoke("echo", req); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 8
	if avg > maxAllocs {
		t.Errorf("echo invoke allocs/op = %.1f, want <= %d", avg, maxAllocs)
	}
}

// BenchmarkGatewayInvoke measures the in-process invocation path
// (no network): the echo round trip through admission, the watchdog
// and the metric record.
func BenchmarkGatewayInvoke(b *testing.B) {
	g, err := NewGateway(GatewayConfig{
		TimeScale: 0.001,
		Admission: &AdmissionConfig{MaxConcurrent: 16, QueueDepth: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		b.Fatal(err)
	}
	req := InvokeRequest{Body: []byte("ping")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Invoke("echo", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayInvokeParallel exercises the same path from many
// goroutines: with per-function state off the global lock, parallel
// throughput should scale instead of serializing.
func BenchmarkGatewayInvokeParallel(b *testing.B) {
	g, err := NewGateway(GatewayConfig{
		TimeScale: 0.001,
		Admission: &AdmissionConfig{MaxConcurrent: 256, QueueDepth: 1024},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Deploy(FunctionSpec{Name: "echo", Handler: HandlerEcho}); err != nil {
		b.Fatal(err)
	}
	req := InvokeRequest{Body: []byte("ping")}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.Invoke("echo", req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
