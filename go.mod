module gpufaas

go 1.24
