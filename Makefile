# Local targets mirror .github/workflows/ci.yml exactly, so `make ci`
# reproduces the gate a PR must pass.

GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-smoke snapshot ci-snapshot elasticity-smoke vuln ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark suite: regenerates every table/figure series.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration per benchmark: the CI smoke pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable perf snapshot (schema in EXPERIMENTS.md).
snapshot:
	$(GO) run ./cmd/faas-bench -exp all -json BENCH_baseline.json

# The same snapshot CI produces (uploaded as an artifact there).
ci-snapshot:
	$(GO) run ./cmd/faas-bench -exp fig4 -json BENCH_ci.json

# Short-mode elasticity scenario (fixed vs autoscaled fleet), mirrored in
# CI as the "elasticity smoke" step.
elasticity-smoke:
	$(GO) run ./cmd/faas-bench -exp elasticity -short -json BENCH_elasticity.json

# Non-blocking vulnerability scan (mirrors CI's advisory step; needs
# network for the vuln DB, so failures never gate).
vuln:
	-$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

ci: fmt-check vet build race bench-smoke ci-snapshot elasticity-smoke
