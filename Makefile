# Local targets mirror .github/workflows/ci.yml exactly, so `make ci`
# reproduces the gate a PR must pass. The workflow runs three parallel
# jobs; the union of their steps is what `ci` chains serially:
#
#   lint job        -> fmt-check vet
#   test job        -> build race
#   experiments job -> bench-smoke ci-snapshot elasticity-smoke
#                      heterogeneity-smoke scale-smoke cells-smoke
#                      cells-determinism obs-smoke obs-determinism
#                      overload-smoke batch-smoke batch-determinism
#                      chaos-smoke chaos-determinism
#
# (bench-regress and vuln stay advisory in both places.)

GO ?= go

# Hot-path benchmarks compared by bench-save / bench-compare.
BENCH_PATTERN ?= BenchmarkEngineFire|BenchmarkEngineCancel|BenchmarkScheduleDecision|BenchmarkScheduleRound1024|BenchmarkStreamingReplay|BenchmarkRouterRoute|BenchmarkMultiCellReplay

.PHONY: all build test race vet fmt fmt-check bench bench-smoke snapshot ci-snapshot elasticity-smoke heterogeneity-smoke scale-smoke cells-smoke cells-determinism obs-smoke obs-determinism overload-smoke batch-smoke batch-determinism chaos-smoke chaos-determinism bench-save bench-compare bench-regress vuln ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark suite: regenerates every table/figure series.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration per benchmark: the CI smoke pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable perf snapshot (schema in EXPERIMENTS.md). The cell
# sweep is not part of `-exp all`; regenerate its artifact with
# `make cells-smoke`.
snapshot:
	$(GO) run ./cmd/faas-bench -exp all -json BENCH_baseline.json

# The same snapshot CI produces (uploaded as an artifact there).
ci-snapshot:
	$(GO) run ./cmd/faas-bench -exp fig4 -json BENCH_ci.json

# Short-mode elasticity scenario (fixed vs autoscaled fleet), mirrored in
# CI as the "elasticity smoke" step.
elasticity-smoke:
	$(GO) run ./cmd/faas-bench -exp elasticity -short -json BENCH_elasticity.json

# Short-mode heterogeneity scenario (homogeneous vs mixed fleets under
# cost-aware tiered scaling), mirrored in CI as the "heterogeneity
# smoke" step.
heterogeneity-smoke:
	$(GO) run ./cmd/faas-bench -exp heterogeneity -short -json BENCH_heterogeneity.json

# Short-mode scale scenario (streaming replay at 64/256 GPUs), mirrored
# in CI as the "scale smoke" step; the full grid — 1024 GPUs × hour-long
# traces — runs in `make snapshot`.
scale-smoke:
	$(GO) run ./cmd/faas-bench -exp scale -short -json BENCH_scale.json

# Short-mode multi-cell sweep ({1,4,16} cells × router policy at
# 1024/4096 GPUs), mirrored in CI as the "cells smoke" step. The full
# grid adds the 16384-GPU column (drop -short).
cells-smoke:
	$(GO) run ./cmd/faas-bench -exp cells -short -workers 8 -json BENCH_cells.json -det-json BENCH_cells.det.json

# The CI determinism gate: the multi-cell sweep must produce
# byte-identical canonical snapshots at any worker count. Reuses the
# workers=8 canonical twin cells-smoke wrote, re-runs the sweep at
# -workers 1, and fails on any byte difference — two sweep executions
# total.
cells-determinism: cells-smoke
	$(GO) run ./cmd/faas-bench -exp cells -short -workers 1 -det-json /tmp/gpufaas_cells_w1.json
	cmp /tmp/gpufaas_cells_w1.json BENCH_cells.det.json
	@echo "multi-cell determinism gate: snapshots byte-identical across worker counts"

# Short-mode observability run (fully instrumented K=1 vs K=16 at 1024
# GPUs: lifecycle trace, latency decomposition, time-series), mirrored
# in CI as the "obs smoke" step. BENCH_obs.trace.json opens in Perfetto.
obs-smoke:
	$(GO) run ./cmd/faas-bench -exp obs -short -workers 8 -json BENCH_obs.json -det-json BENCH_obs.det.json -trace BENCH_obs.trace.json

# The observability determinism gate: the instrumented sweep AND its
# rendered trace-event export must be byte-identical at any worker
# count. Reuses the workers=8 twins obs-smoke wrote and re-runs at
# -workers 1.
obs-determinism: obs-smoke
	$(GO) run ./cmd/faas-bench -exp obs -short -workers 1 -det-json /tmp/gpufaas_obs_w1.json -trace /tmp/gpufaas_obs_w1.trace.json
	cmp /tmp/gpufaas_obs_w1.json BENCH_obs.det.json
	cmp /tmp/gpufaas_obs_w1.trace.json BENCH_obs.trace.json
	@echo "observability determinism gate: snapshot and trace byte-identical across worker counts"

# Short-mode overload benchmark (live serving path past saturation,
# admission control on vs off), mirrored in CI as the "overload smoke"
# step. Wall-clock rows: never part of the determinism gates.
overload-smoke:
	$(GO) run ./cmd/faas-bench -exp overload -short -json BENCH_overload.json

# Short-mode batching frontier sweep (policy × shape × MaxBatch plus the
# linger rows), mirrored in CI as the "batch smoke" step. Writes to a
# fresh file so the committed full-grid BENCH_batch.json survives as the
# baseline for the advisory frontier comparison.
batch-smoke:
	$(GO) run ./cmd/faas-bench -exp batch -short -workers 8 -json BENCH_batch.ci.json -det-json BENCH_batch.det.json

# The batching determinism gate: pure sim time, so unlike overload the
# sweep joins the byte-identical-across-worker-counts contract. Reuses
# the workers=8 canonical twin batch-smoke wrote and re-runs at
# -workers 1.
batch-determinism: batch-smoke
	$(GO) run ./cmd/faas-bench -exp batch -short -workers 1 -det-json /tmp/gpufaas_batch_w1.json
	cmp /tmp/gpufaas_batch_w1.json BENCH_batch.det.json
	@echo "batching determinism gate: snapshots byte-identical across worker counts"

# Short-mode availability sweep (deterministic fault injection: mode ×
# MTTR × retry policy), mirrored in CI as the "chaos smoke" step. Writes
# to a fresh file so the committed full-grid BENCH_chaos.json survives
# as the baseline for the advisory retry-on comparison.
chaos-smoke:
	$(GO) run ./cmd/faas-bench -exp chaos -short -workers 8 -json BENCH_chaos.ci.json -det-json BENCH_chaos.det.json

# The chaos determinism gate: every fault instant is a pure function of
# the seed, so the sweep must be byte-identical at any worker count.
# Reuses the workers=8 canonical twin chaos-smoke wrote and re-runs at
# -workers 1.
chaos-determinism: chaos-smoke
	$(GO) run ./cmd/faas-bench -exp chaos -short -workers 1 -det-json /tmp/gpufaas_chaos_w1.json
	cmp /tmp/gpufaas_chaos_w1.json BENCH_chaos.det.json
	@echo "chaos determinism gate: snapshots byte-identical across worker counts"

# Record the hot-path benchmarks for later comparison: the previous
# recording rotates to bench_old.txt, so the workflow is
#   make bench-save            # on the old commit
#   ...change code...
#   make bench-save            # on the new commit
#   make bench-compare
bench-save:
	@if [ -f bench_new.txt ]; then mv bench_new.txt bench_old.txt; fi
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count 6 ./internal/sim ./internal/experiments . | tee bench_new.txt

# benchstat old vs new hot-path snapshot; falls back to a per-benchmark
# mean comparison when benchstat is not installed (the dev container has
# no network to fetch it).
bench-compare:
	@if [ ! -f bench_old.txt ] || [ ! -f bench_new.txt ]; then \
		echo "need bench_old.txt and bench_new.txt — run 'make bench-save' on each commit"; exit 1; fi
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench_old.txt bench_new.txt; \
	else \
		echo "benchstat not found (go install golang.org/x/perf/cmd/benchstat@latest); mean ns/op fallback:"; \
		awk '/^Benchmark/ { sub(/-[0-9]+$$/, "", $$1); n[$$1]++; t[$$1] += $$3 } \
		     END { for (b in n) printf "%-50s %12.1f ns/op\n", b, t[b]/n[b] }' bench_old.txt | sort > /tmp/bench_old.mean; \
		awk '/^Benchmark/ { sub(/-[0-9]+$$/, "", $$1); n[$$1]++; t[$$1] += $$3 } \
		     END { for (b in n) printf "%-50s %12.1f ns/op\n", b, t[b]/n[b] }' bench_new.txt | sort > /tmp/bench_new.mean; \
		join -j 1 /tmp/bench_old.mean /tmp/bench_new.mean | \
		awk '{ printf "%-50s old %10.1f  new %10.1f  (%+.1f%%)\n", $$1, $$2, $$4, ($$4-$$2)/$$2*100 }'; \
	fi

# Advisory hot-path regression check against the committed baseline
# snapshot: re-measures the gpufaas-bench/v1 hotpath rows (which include
# the router_route cell benchmarks) and flags any case more than 50%
# slower than BENCH_baseline.json. Mirrored as the CI "benchmark
# regression" advisory step; never gates locally.
bench-regress:
	-$(GO) run ./cmd/faas-bench -exp hotpath -json BENCH_hotpath.json && \
		$(GO) run ./cmd/faas-bench/benchregress BENCH_baseline.json BENCH_hotpath.json

# Non-blocking vulnerability scan (mirrors CI's advisory step; needs
# network for the vuln DB, so failures never gate).
vuln:
	-$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

ci: fmt-check vet build race bench-smoke ci-snapshot elasticity-smoke heterogeneity-smoke scale-smoke cells-smoke cells-determinism obs-smoke obs-determinism overload-smoke batch-smoke batch-determinism chaos-smoke chaos-determinism
