// Package gpufaas is a GPU-enabled Function-as-a-Service runtime for
// machine-learning inference, reproducing "GPU-enabled Function-as-a-
// Service for Machine Learning Inference" (Zhao, Jha, Hong — IPPS 2023,
// arXiv:2303.05601).
//
// The library extends a FaaS framework (an OpenFaaS-like gateway/watchdog
// stack under internal/faas) with three components that let inference
// functions share a cluster of GPUs:
//
//   - per-node GPU Managers that own GPU processes and execute one request
//     at a time per GPU;
//   - a global Cache Manager that treats models resident in GPU memory as
//     cache items under an LRU (or pluggable) replacement policy;
//   - a global Scheduler offering the baseline load-balancing policy (LB)
//     and the paper's locality-aware load balancing with optional
//     out-of-order dispatch (LALB, LALB+O3).
//
// This facade exposes the high-level operations most users need: build a
// cluster, submit or replay workloads, and run the paper's experiments.
// Lower-level packages remain importable for fine-grained control
// (internal/core for the scheduler, internal/cache, internal/gpu,
// internal/cluster, internal/experiments, internal/faas).
//
// # Quick start
//
//	c, err := gpufaas.NewCluster(gpufaas.WithPolicy("LALBO3"))
//	if err != nil { ... }
//	rep, err := gpufaas.ReplayPaperWorkload(c, 25)
//	fmt.Printf("avg latency %.2fs, miss ratio %.3f\n",
//	    rep.AvgLatencySec, rep.MissRatio)
package gpufaas

import (
	"errors"
	"fmt"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/chaos"
	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/experiments"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/multicell"
	"gpufaas/internal/sim"
	"gpufaas/internal/trace"
)

// Re-exported result and configuration types.
type (
	// Report is the evaluation summary of a run (latency, miss ratios,
	// utilization, duplicates, GPU-seconds).
	Report = cluster.Report
	// Result is one completed request record.
	Result = gpumgr.Result
	// Request is one inference invocation.
	Request = core.Request
	// Model describes one deployable inference model.
	Model = models.Model
	// ModelZoo is the registry of deployable models.
	ModelZoo = models.Zoo
	// TraceRequest is one workload-trace inference request.
	TraceRequest = trace.Request
	// Cluster is the assembled GPU-FaaS system.
	Cluster = cluster.Cluster
	// AutoscaleConfig configures the elastic-membership autoscaler
	// (policy, tick interval, fleet bounds, cold start, horizon).
	AutoscaleConfig = autoscale.Config
	// AutoscalePolicy decides the desired fleet size each tick.
	AutoscalePolicy = autoscale.Policy
	// ScaleEvent is one executed scale-up/scale-down, as logged in
	// Report.ScaleEvents.
	ScaleEvent = autoscale.ScaleEvent
	// GPUClass declares one device class of a heterogeneous fleet
	// (type, memory, boot count, cost per GPU-second, cold start).
	GPUClass = cluster.GPUClass
	// FleetSpec declares a fleet as an ordered mix of device classes.
	FleetSpec = cluster.FleetSpec
	// ClassUsage is one device class's cost row in Report.ClassUsage.
	ClassUsage = cluster.ClassUsage
	// CellReport is the merged fleet roll-up of a multi-cell run
	// (summed counters, exact percentiles over the concatenated
	// samples, per-cell spread).
	CellReport = multicell.MergedReport
	// CellResult is a full multi-cell run: the merged roll-up plus the
	// per-cell outcomes and the run's wall clock.
	CellResult = multicell.Result
	// ChaosConfig describes the deterministic fault model (MTBF-sampled
	// or scripted crashes, straggler windows, MTTR recovery).
	ChaosConfig = chaos.Config
	// ChaosFault is one scripted fault entry (time, device ordinal, kind).
	ChaosFault = chaos.Fault
	// RetryPolicy bounds how many attempts a failure-interrupted request
	// may consume before it drops.
	RetryPolicy = core.RetryPolicy
)

// Config is the resolved facade configuration: the cluster
// configuration plus the multi-cell front door. Options mutate it; the
// cluster fields are promoted from the embedded cluster.Config.
type Config struct {
	cluster.Config
	// Cells shards the fleet into this many independent cells behind a
	// deterministic front-door router (0 or 1: a single cluster).
	Cells int
	// CellRouter names the router policy: "hash", "affinity" or
	// "leastload" (empty: hash).
	CellRouter string
}

// Option customizes the configuration.
type Option func(*Config) error

// WithPolicy selects the scheduler: "LB", "LALB" or "LALBO3".
func WithPolicy(name string) Option {
	return func(cfg *Config) error {
		p, err := core.ParsePolicy(name)
		if err != nil {
			return err
		}
		cfg.Policy = p
		return nil
	}
}

// WithO3Limit sets the out-of-order starvation limit (LALBO3 only).
func WithO3Limit(limit int) Option {
	return func(cfg *Config) error {
		if limit < 0 {
			return fmt.Errorf("gpufaas: negative O3 limit %d", limit)
		}
		cfg.O3Limit = limit
		return nil
	}
}

// WithBatching lets each dispatch coalesce up to maxBatch queued
// requests for the same model into one batched GPU launch, paying the
// sub-linear batch service time (models.Profile.InferTimeAt) instead of
// maxBatch sequential inferences. maxBatch <= 1 disables coalescing and
// is byte-identical to a cluster built without this option. wait is the
// optional linger window: a lone head-of-queue request may wait up to
// this long for same-model arrivals before launching alone (0: never
// linger; ignored when maxBatch <= 1).
func WithBatching(maxBatch int, wait time.Duration) Option {
	return func(cfg *Config) error {
		if maxBatch < 0 {
			return fmt.Errorf("gpufaas: negative batch cap %d", maxBatch)
		}
		if wait < 0 {
			return fmt.Errorf("gpufaas: negative batch linger %v", wait)
		}
		cfg.MaxBatch = maxBatch
		cfg.BatchWait = wait
		return nil
	}
}

// WithTopology sets the node count and GPUs per node.
func WithTopology(nodes, gpusPerNode int) Option {
	return func(cfg *Config) error {
		cfg.Nodes = nodes
		cfg.GPUsPerNode = gpusPerNode
		return nil
	}
}

// WithFleet declares the GPU fleet as an ordered mix of device classes —
// the heterogeneous alternative to WithTopology/WithGPUMemory. Profiles
// are resolved per (class, model); with no explicit profile store the
// built-in Table I scalings cover the "rtx2080" and "t4" classes. The
// run's Report gains the Cost and ClassUsage columns, and class-aware
// autoscaling policies (TieredPolicy) become available.
//
//	c, _ := gpufaas.NewCluster(gpufaas.WithFleet(gpufaas.FleetSpec{
//	    {Type: "t4", Count: 8, CostPerSecond: 0.20},
//	    {Type: "rtx2080", Count: 4, CostPerSecond: 0.60},
//	}))
func WithFleet(spec FleetSpec) Option {
	return func(cfg *Config) error {
		if len(spec) == 0 {
			return errors.New("gpufaas: empty fleet spec")
		}
		cfg.Fleet = append(FleetSpec(nil), spec...)
		return nil
	}
}

// WithGPUMemory sets the usable model memory per GPU in bytes.
func WithGPUMemory(bytes int64) Option {
	return func(cfg *Config) error {
		cfg.GPUMemory = bytes
		return nil
	}
}

// WithCachePolicy selects the replacement policy: "lru", "fifo" or "lfu".
func WithCachePolicy(policy string) Option {
	return func(cfg *Config) error {
		cfg.CachePolicy = policy
		return nil
	}
}

// WithZoo replaces the default Table I model zoo.
func WithZoo(z *models.Zoo) Option {
	return func(cfg *Config) error {
		cfg.Zoo = z
		return nil
	}
}

// WithRealClock switches the cluster to wall-clock (live) mode; use
// Cluster.Submit instead of RunWorkload.
func WithRealClock() Option {
	return func(cfg *Config) error {
		cfg.Clock = sim.NewRealClock()
		return nil
	}
}

// WithResultHook registers a callback invoked after every completion.
func WithResultHook(fn func(Result)) Option {
	return func(cfg *Config) error {
		cfg.OnResult = fn
		return nil
	}
}

// WithAutoscaler attaches a policy-driven autoscaler: the cluster gains
// elastic membership (AddGPU / DecommissionGPU with drain) driven by the
// policy at (simulated or wall) time. In simulated-time mode
// acfg.Horizon must be set — see AutoscaleConfig. Scale events appear in
// Report.ScaleEvents and through Cluster.AutoscalerStatus.
func WithAutoscaler(acfg AutoscaleConfig) Option {
	return func(cfg *Config) error {
		if acfg.Policy == nil {
			return errors.New("gpufaas: autoscaler needs a policy")
		}
		cfg.Autoscale = &acfg
		return nil
	}
}

// WithChaos attaches the deterministic fault injector: GPU crashes
// (sampled per device from ccfg.MTBF and/or scripted via ccfg.Script),
// transient straggler slowdown windows, and MTTR recovery. retry bounds
// how many attempts a failure-interrupted request may consume before it
// drops as retry_exhausted; 0 disables retry (an interrupted request
// fails outright). The fault schedule is a pure function of ccfg.Seed
// and device ordinals, so chaos runs stay byte-identical at any worker
// count. A zero ccfg injects nothing and leaves reports byte-identical
// to a cluster built without this option.
func WithChaos(ccfg ChaosConfig, retry int) Option {
	return func(cfg *Config) error {
		if err := ccfg.Validate(); err != nil {
			return fmt.Errorf("gpufaas: %w", err)
		}
		if retry < 0 {
			return fmt.Errorf("gpufaas: negative retry attempt budget %d", retry)
		}
		cc := ccfg
		cc.Script = append([]ChaosFault(nil), ccfg.Script...)
		cfg.Chaos = &cc
		cfg.Retry = RetryPolicy{MaxAttempts: retry}
		return nil
	}
}

// WithCells shards the fleet into cells independent simulation cells
// behind a deterministic front-door router. router names the policy —
// "hash" (consistent hashing of the function name), "affinity"
// (model-locality homing with overload spill) or "leastload"
// (snapshot-lagged least-loaded cell); empty selects "hash". Multi-cell
// configurations run through RunCellsExperiment (or
// experiments.RunCells directly) — NewCluster builds exactly one
// cluster and rejects Cells > 1.
func WithCells(cells int, router string) Option {
	return func(cfg *Config) error {
		if cells < 1 {
			return fmt.Errorf("gpufaas: need >= 1 cell, got %d", cells)
		}
		if router != "" {
			if _, err := multicell.ParsePolicy(router); err != nil {
				return fmt.Errorf("gpufaas: %w", err)
			}
		}
		cfg.Cells = cells
		cfg.CellRouter = router
		return nil
	}
}

// TargetUtilizationPolicy sizes the fleet toward a busy-fraction target
// in (0,1]; queuePerGPU (default 1) damps queue-driven scale-up.
func TargetUtilizationPolicy(utilization float64, queuePerGPU int) (AutoscalePolicy, error) {
	return autoscale.NewTargetUtilization(utilization, queuePerGPU)
}

// StepHysteresisPolicy scales in fixed steps after sustained queue
// pressure (up) or sustained idleness (down).
func StepHysteresisPolicy(upQueueDepth int, downIdleRatio float64, step int) (AutoscalePolicy, error) {
	return autoscale.NewStepHysteresis(upQueueDepth, downIdleRatio, step)
}

// TieredPolicy is the cost-aware policy for WithFleet clusters: the
// cheapest class (tiers[0], fleet-spec order) is demand-sized toward
// the utilization target, and faster tiers are bought only when the
// windowed p95 stays above targetP95 seconds. Requires a declared
// fleet; see autoscale.Tiered for the full knob set.
func TieredPolicy(tiers []string, targetP95, utilization float64) (AutoscalePolicy, error) {
	return autoscale.NewTiered(autoscale.Tiered{
		Tiers:       tiers,
		TargetP95:   targetP95,
		Utilization: utilization,
	})
}

// resolveConfig applies the options over the paper-testbed defaults.
func resolveConfig(opts []Option) (Config, error) {
	cfg := Config{Config: cluster.DefaultConfig()}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// NewCluster builds a GPU-FaaS cluster; without options it is the paper's
// testbed (3 nodes x 4 RTX 2080, LALB+O3, LRU). A single Cluster is one
// cell: configurations with WithCells(>1) must run through
// RunCellsExperiment instead.
func NewCluster(opts ...Option) (*Cluster, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.Cells > 1 {
		return nil, fmt.Errorf("gpufaas: NewCluster builds one cell; run %d cells through RunCellsExperiment", cfg.Cells)
	}
	return cluster.New(cfg.Config)
}

// ReplayPaperWorkload runs the §V-A1 evaluation workload (6 minutes of the
// Azure-shaped trace at 325 requests/minute over the given working-set
// size) on a fresh cluster configured like c... the cluster passed in must
// be freshly built in simulated-time mode; its zoo is replaced by the
// workload's per-function model instances, so prefer RunExperiment for
// one-shot use.
func ReplayPaperWorkload(c *Cluster, workingSet int) (Report, error) {
	built, err := experiments.Workload(experiments.DefaultWorkload(workingSet), models.Default())
	if err != nil {
		return Report{}, err
	}
	if len(built.Requests) == 0 {
		return Report{}, errors.New("gpufaas: workload produced an empty request stream")
	}
	// The cluster must know the instance models; callers who need the
	// paper workload on a custom cluster should build it with
	// WithZoo(built.Zoo). Detect the mismatch early, across every
	// distinct model in the stream — a partially-matching zoo would
	// otherwise silently drop the unmatched requests as failed
	// dispatches mid-run.
	seen := make(map[string]bool, workingSet)
	for _, r := range built.Requests {
		if seen[r.Model] {
			continue
		}
		seen[r.Model] = true
		if _, ok := c.Zoo().Get(r.Model); !ok {
			return Report{}, fmt.Errorf("gpufaas: cluster zoo lacks workload instance %q; build the cluster with the experiment zoo or use RunExperiment", r.Model)
		}
	}
	if built.TopModel != "" {
		c.TrackModel(built.TopModel)
	}
	return c.RunWorkload(built.Requests)
}

// RunExperiment builds the paper's cluster for the named policy and runs
// the evaluation workload at the working-set size, returning the report.
// This is the one-call path behind Figures 4–6.
func RunExperiment(policy string, workingSet int) (Report, error) {
	p, err := core.ParsePolicy(policy)
	if err != nil {
		return Report{}, err
	}
	row, err := experiments.Run(experiments.RunParams{Policy: p, WorkingSet: workingSet})
	if err != nil {
		return Report{}, err
	}
	return row.Report, nil
}

// RunCellsExperiment shards the paper's evaluation workload across the
// configured cells: the fleet described by the options is partitioned
// into WithCells' cell count, each cell runs its own full stack
// (engine, scheduler, cache) on its own goroutine, and a deterministic
// front-door router splits the arrival stream. The result carries the
// merged fleet roll-up plus every per-cell outcome, and is
// byte-identical at any worker count. With one cell (or no WithCells)
// it degenerates to the single-cluster experiment path.
//
//	res, err := gpufaas.RunCellsExperiment(35,
//	    gpufaas.WithPolicy("LALBO3"),
//	    gpufaas.WithTopology(64, 4),
//	    gpufaas.WithCells(4, "leastload"))
//	fmt.Printf("p95 %.2fs across %d cells\n", res.Merged.P95LatencySec, res.Merged.Cells)
//
// Options that attach live state to a single cluster — WithRealClock,
// WithResultHook, WithZoo, WithAutoscaler — are rejected here: cells
// build their own zoos from the workload, and per-cell hooks belong to
// the lower-level experiments.RunCells / multicell.Run API.
func RunCellsExperiment(workingSet int, opts ...Option) (CellResult, error) {
	cfg, err := resolveConfig(opts)
	if err != nil {
		return CellResult{}, err
	}
	switch {
	case cfg.Clock != nil:
		return CellResult{}, errors.New("gpufaas: multi-cell runs are simulated-time only (drop WithRealClock)")
	case cfg.OnResult != nil:
		return CellResult{}, errors.New("gpufaas: WithResultHook is per-cluster; use experiments.RunCells for per-cell hooks")
	case cfg.Zoo != nil:
		return CellResult{}, errors.New("gpufaas: multi-cell runs build their zoo from the workload (drop WithZoo)")
	case cfg.Autoscale != nil:
		return CellResult{}, errors.New("gpufaas: per-cell autoscaling is not wired through the facade yet; use experiments.RunCells")
	}
	cells := cfg.Cells
	if cells == 0 {
		cells = 1
	}
	router := multicell.RouteHash
	if cfg.CellRouter != "" {
		if router, err = multicell.ParsePolicy(cfg.CellRouter); err != nil {
			return CellResult{}, fmt.Errorf("gpufaas: %w", err)
		}
	}
	return experiments.RunCells(experiments.CellParams{
		Run: experiments.RunParams{
			Policy:      cfg.Policy,
			O3Limit:     &cfg.O3Limit,
			WorkingSet:  workingSet,
			CachePolicy: cfg.CachePolicy,
			Nodes:       cfg.Nodes,
			GPUsPerNode: cfg.GPUsPerNode,
			GPUMemory:   cfg.GPUMemory,
			Fleet:       cfg.Fleet,
		},
		Cells:  cells,
		Router: router,
	})
}

// PaperWorkload materializes the evaluation request stream and the model
// zoo it requires, for callers that drive a cluster manually.
func PaperWorkload(workingSet int, seed int64) ([]trace.Request, *models.Zoo, string, error) {
	p := experiments.DefaultWorkload(workingSet)
	p.Seed = seed
	built, err := experiments.Workload(p, models.Default())
	if err != nil {
		return nil, nil, "", err
	}
	return built.Requests, built.Zoo, built.TopModel, nil
}

// TableIModels returns the paper's Table I model zoo.
func TableIModels() *models.Zoo { return models.Default() }
