package gpufaas

import (
	"strings"
	"testing"
	"time"

	"gpufaas/internal/models"
	"gpufaas/internal/trace"
)

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.GPUIDs()); got != 12 {
		t.Fatalf("GPUs = %d, want 12 (paper testbed)", got)
	}
}

func TestOptionErrors(t *testing.T) {
	if _, err := NewCluster(WithPolicy("bogus")); err == nil {
		t.Error("bogus policy should fail")
	}
	if _, err := NewCluster(WithO3Limit(-1)); err == nil {
		t.Error("negative O3 limit should fail")
	}
	if _, err := NewCluster(WithTopology(0, 4)); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NewCluster(WithGPUMemory(-1)); err == nil {
		t.Error("negative memory should fail")
	}
	if _, err := NewCluster(WithCachePolicy("bogus")); err == nil {
		t.Error("bogus cache policy should fail")
	}
	if _, err := NewCluster(WithFleet(nil)); err == nil {
		t.Error("empty fleet should fail")
	}
	if _, err := NewCluster(WithFleet(FleetSpec{{Type: "t4", Count: 1}, {Type: "t4", Count: 1}})); err == nil {
		t.Error("duplicate fleet class should fail")
	}
	if _, err := NewCluster(WithBatching(-1, 0)); err == nil {
		t.Error("negative batch cap should fail")
	}
	if _, err := NewCluster(WithBatching(8, -time.Second)); err == nil {
		t.Error("negative batch linger should fail")
	}
}

func TestWithFleetFacade(t *testing.T) {
	c, err := NewCluster(WithFleet(FleetSpec{
		{Type: "t4", Count: 2, CostPerSecond: 0.20},
		{Type: "rtx2080", Count: 1, CostPerSecond: 0.60},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ids := c.GPUIDs()
	if len(ids) != 3 || ids[0] != "t4/gpu0" || ids[2] != "rtx2080/gpu0" {
		t.Fatalf("GPUIDs = %v", ids)
	}
	reqs := make([]TraceRequest, 6)
	for i := range reqs {
		reqs[i] = TraceRequest{
			ID: int64(i), Function: "f", Model: "resnet18",
			Arrival: time.Duration(i) * 100 * time.Millisecond, BatchSize: 32,
		}
	}
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6 || rep.Cost <= 0 || len(rep.ClassUsage) != 2 {
		t.Errorf("report = requests %d cost %g usage %+v", rep.Requests, rep.Cost, rep.ClassUsage)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	rep, err := RunExperiment("LALBO3", 15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6*325 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if rep.Policy != "LALBO3" {
		t.Errorf("policy = %s", rep.Policy)
	}
	if _, err := RunExperiment("bogus", 15); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestPaperWorkloadAndReplay(t *testing.T) {
	reqs, zoo, top, err := PaperWorkload(15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 6*325 || zoo.Len() != 15 || top == "" {
		t.Fatalf("workload: %d reqs, %d models, top=%q", len(reqs), zoo.Len(), top)
	}
	c, err := NewCluster(WithPolicy("LALB"), WithZoo(zoo))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayPaperWorkload(c, 15)
	// ReplayPaperWorkload builds with the default seed (1), whose
	// instances share the zoo names for ws=15, so this should run.
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6*325 {
		t.Errorf("requests = %d", rep.Requests)
	}
}

func TestReplayZooMismatch(t *testing.T) {
	c, err := NewCluster() // Table I zoo, not instance zoo
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayPaperWorkload(c, 15); err == nil {
		t.Error("zoo mismatch should be detected")
	}
}

func TestReplayPartialZooMismatch(t *testing.T) {
	// A zoo that contains the workload's top model but is missing another
	// instance: validating only the first request would let this cluster
	// run and silently fail the unmatched requests mid-workload.
	_, zoo, top, err := PaperWorkload(15, 1) // seed 1 = replay's seed
	if err != nil {
		t.Fatal(err)
	}
	var subset []Model
	dropped := ""
	for _, m := range zoo.All() {
		if dropped == "" && m.Name != top {
			dropped = m.Name
			continue
		}
		subset = append(subset, m)
	}
	partial, err := models.NewZoo(subset)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(WithZoo(partial))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReplayPaperWorkload(c, 15)
	if err == nil {
		t.Fatal("partial zoo mismatch should be detected before the run")
	}
	if !strings.Contains(err.Error(), dropped) {
		t.Errorf("error %q should name the missing instance %q", err, dropped)
	}
}

func TestTableIModels(t *testing.T) {
	if TableIModels().Len() != 22 {
		t.Error("Table I zoo must have 22 models")
	}
}

func TestResultHook(t *testing.T) {
	var count int
	c, err := NewCluster(
		WithPolicy("LALBO3"),
		WithResultHook(func(Result) { count++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs, zoo, _, err := PaperWorkload(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCluster(WithPolicy("LALBO3"), WithZoo(zoo),
		WithResultHook(func(Result) { count++ }))
	if err != nil {
		t.Fatal(err)
	}
	_ = c
	rep, err := c2.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if int64(count) != rep.Requests {
		t.Errorf("hook fired %d times for %d requests", count, rep.Requests)
	}
}

func TestWithCellsFacade(t *testing.T) {
	if _, err := NewCluster(WithCells(0, "")); err == nil {
		t.Error("zero cells should fail")
	}
	if _, err := NewCluster(WithCells(2, "bogus")); err == nil {
		t.Error("bogus router policy should fail")
	}
	if _, err := NewCluster(WithCells(2, "hash")); err == nil {
		t.Error("NewCluster must reject multi-cell configs")
	}
	if _, err := NewCluster(WithCells(1, "leastload")); err != nil {
		t.Errorf("one cell is a plain cluster: %v", err)
	}
	if _, err := RunCellsExperiment(15, WithRealClock(), WithCells(2, "")); err == nil {
		t.Error("multi-cell real-clock runs should be rejected")
	}
	if _, err := RunCellsExperiment(15, WithAutoscaler(AutoscaleConfig{}), WithCells(2, "")); err == nil {
		t.Error("bad autoscaler option should fail")
	}

	res, err := RunCellsExperiment(15,
		WithPolicy("LALB"),
		WithTopology(4, 3),
		WithCells(2, "leastload"))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Merged
	if m.Cells != 2 || m.Router != "leastload" {
		t.Errorf("merged header = cells %d router %q", m.Cells, m.Router)
	}
	if total := int64(6 * 325); m.Requests+m.Failed != total {
		t.Errorf("completed+failed = %d, want %d", m.Requests+m.Failed, total)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("per-cell outcomes = %d", len(res.Cells))
	}
	var sum int64
	for _, c := range res.Cells {
		sum += c.Routed
	}
	if sum != 6*325 {
		t.Errorf("router split %d requests, want %d", sum, 6*325)
	}
}

func TestWithAutoscalerFacade(t *testing.T) {
	if _, err := NewCluster(WithAutoscaler(AutoscaleConfig{})); err == nil {
		t.Error("autoscaler without a policy should fail")
	}
	pol, err := TargetUtilizationPolicy(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TargetUtilizationPolicy(2, 1); err == nil {
		t.Error("utilization > 1 should fail")
	}
	if _, err := StepHysteresisPolicy(0, 0.5, 2); err == nil {
		t.Error("bad step policy should fail")
	}
	// Sim mode without a horizon is rejected (RunWorkload would never
	// drain under a forever-rescheduling tick).
	if _, err := NewCluster(WithAutoscaler(AutoscaleConfig{Policy: pol})); err == nil {
		t.Error("sim-mode autoscaler without Horizon should fail")
	}
	c, err := NewCluster(
		WithTopology(1, 2),
		WithAutoscaler(AutoscaleConfig{
			Policy:    pol,
			Interval:  2 * time.Second,
			MinGPUs:   2,
			MaxGPUs:   6,
			ColdStart: time.Second,
			Horizon:   2 * time.Minute,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Drive enough same-window load that the queue forces a scale-up.
	var stream []trace.Request
	for i := 0; i < 120; i++ {
		stream = append(stream, trace.Request{
			ID: int64(i), Function: "fn", Model: "resnet18",
			Arrival: time.Duration(i) * 250 * time.Millisecond, BatchSize: 32,
		})
	}
	rep, err := c.RunWorkload(stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScaleUps == 0 {
		t.Error("autoscaler never scaled up under sustained backlog")
	}
	if len(rep.ScaleEvents) == 0 {
		t.Error("report carries no scale events")
	}
	if st, ok := c.AutoscalerStatus(); !ok || st.Ticks == 0 {
		t.Errorf("autoscaler status = %+v ok=%v", st, ok)
	}
	if rep.GPUSeconds <= 0 {
		t.Errorf("GPUSeconds = %g", rep.GPUSeconds)
	}
}
