// Multitenant: the §VI isolation discussion in action. Two tenants share
// the GPU cluster; tenant "free-tier" has a strict quota on concurrent GPU
// processes and cumulative GPU time, tenant "pro" is unlimited. A
// misbehaving free-tier client that floods the system gets throttled by
// quota errors while the pro tenant's requests keep completing.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	"gpufaas"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/trace"
)

func main() {
	completed := map[string]int{}
	c, err := gpufaas.NewCluster(
		gpufaas.WithPolicy("LALBO3"),
		gpufaas.WithTopology(1, 4),
		gpufaas.WithResultHook(func(r gpufaas.Result) { completed[r.Tenant]++ }),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Quota: at most 2 concurrent GPU processes and 60 simulated seconds
	// of GPU time for the free tier.
	for _, mgr := range c.Managers() {
		mgr.SetQuota("free-tier", gpumgr.Quota{
			MaxProcesses: 2,
			MaxGPUTime:   60 * time.Second,
		})
	}

	// Interleave requests: the free tier floods with many distinct
	// models (each needing a new GPU process); the pro tenant sends a
	// steady stream on one model.
	models := gpufaas.TableIModels().Names()
	var reqs []trace.Request
	for i := 0; i < 60; i++ {
		tenant, model := "pro", "resnet18"
		if i%2 == 0 {
			tenant, model = "free-tier", models[(i/2)%len(models)]
		}
		reqs = append(reqs, trace.Request{
			ID: int64(i), Function: "fn-" + tenant, Model: model,
			Arrival: time.Duration(i) * 500 * time.Millisecond, BatchSize: 32, Tenant: tenant,
		})
	}
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total requests:    %d\n", len(reqs))
	fmt.Printf("completed:         %d  (pro: %d, free-tier: %d)\n",
		rep.Requests, completed["pro"], completed["free-tier"])
	fmt.Printf("rejected by quota: %d (all free-tier)\n", rep.Failed)
	for _, mgr := range c.Managers() {
		fmt.Printf("free-tier GPU time on %s: %v (cap 60s), live processes: %d (cap 2)\n",
			mgr.Node(), mgr.TenantGPUTime("free-tier").Round(time.Second),
			mgr.TenantProcesses("free-tier"))
	}
	if rep.Failed == 0 {
		log.Fatal("expected quota rejections for the flooding tenant")
	}
	if completed["pro"] != 30 {
		log.Fatalf("pro tenant lost requests: %d/30", completed["pro"])
	}
	fmt.Println("\nisolation holds: the flooding free tier was throttled, the pro tenant was unaffected")
}
