// Imageclassify: the end-to-end live path. Starts the FaaS gateway
// in-process, deploys three GPU-enabled image-classification functions
// (ResNet-18, VGG-19, SqueezeNet), then streams invocations through the
// HTTP API. Each invocation is scheduled onto the simulated GPU cluster
// (real LALB decisions, real cache hits/misses with Table I timings scaled
// down 1000x) and the predictions are computed by real CNN forward passes
// over synthetic CIFAR/MNIST/Hymenoptera images.
//
//	go run ./examples/imageclassify
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"gpufaas/internal/faas"
)

func main() {
	g, err := faas.NewGateway(faas.GatewayConfig{
		Policy:        "LALBO3",
		TimeScale:     0.001, // Table I seconds -> milliseconds
		InvokeTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	fmt.Println("gateway:", srv.URL)

	deploy := func(name, model string) {
		spec := faas.FunctionSpec{Name: name, GPUEnabled: true, Model: model, BatchSize: 8}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(srv.URL+"/system/functions", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusAccepted {
			log.Fatalf("deploy %s: %v %v", name, resp.Status, err)
		}
		resp.Body.Close()
		fmt.Printf("deployed %-12s -> %s\n", name, model)
	}
	deploy("classify-rn", "resnet18")
	deploy("classify-vgg", "vgg19")
	deploy("classify-sq", "squeezenet1.1")

	names := []string{"classify-rn", "classify-vgg", "classify-sq"}
	fmt.Println("\ninvoking (watch cold-start misses turn into warm hits):")
	for i := 0; i < 12; i++ {
		name := names[i%len(names)]
		resp, err := http.Post(srv.URL+"/function/"+name, "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		var iv faas.InvokeResponse
		if err := json.NewDecoder(resp.Body).Decode(&iv); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		state := "MISS (cold start: model uploaded over PCIe)"
		if iv.Hit {
			state = "HIT  (model already resident)"
		}
		fmt.Printf("  %-12s gpu=%-11s %s classes=%v\n", name, iv.GPU, state, iv.Predictions[:4])
	}

	var metrics map[string]any
	resp, err := http.Get(srv.URL + "/system/metrics")
	if err != nil {
		log.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	fmt.Printf("\ncluster: %d requests, miss ratio %.3f\n",
		int(metrics["Requests"].(float64)), metrics["MissRatio"].(float64))
}
