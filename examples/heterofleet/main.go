// Heterofleet: run the same workload on three fleet compositions — the
// paper's homogeneous RTX 2080 testbed, a cheap t4-class fleet, and a
// tiered-autoscaled mix that grows the cheap tier with demand and buys
// fast GPUs only when the p95 objective is violated — and compare cost
// (per-class GPU-seconds × price) against latency.
//
//	go run ./examples/heterofleet
package main

import (
	"fmt"
	"log"

	"gpufaas"
)

// run replays the paper workload (working set 15) on a cluster built
// with the given extra options and returns its report.
func run(zoo *gpufaas.ModelZoo, reqs []gpufaas.TraceRequest, opts ...gpufaas.Option) gpufaas.Report {
	opts = append(opts, gpufaas.WithPolicy("LALBO3"), gpufaas.WithZoo(zoo))
	c, err := gpufaas.NewCluster(opts...)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	reqs, zoo, _, err := gpufaas.PaperWorkload(15, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's class, priced at 0.60/GPU-second.
	fast := run(zoo, reqs, gpufaas.WithFleet(gpufaas.FleetSpec{
		{Type: "rtx2080", Count: 12, CostPerSecond: 0.60},
	}))

	// The cheap tier: ~1.6x slower, ~3x cheaper; capacity-matched at 20
	// devices (12 x 1.6).
	cheap := run(zoo, reqs, gpufaas.WithFleet(gpufaas.FleetSpec{
		{Type: "t4", Count: 20, CostPerSecond: 0.20},
	}))

	// The mix: boot 4 cheap GPUs; the tiered policy demand-sizes the
	// cheap tier and escalates to rtx2080 only on sustained p95
	// violation. Horizon must cover the 6-minute trace plus drain.
	pol, err := gpufaas.TieredPolicy([]string{"t4", "rtx2080"}, 6.0, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	mixed := run(zoo, reqs,
		gpufaas.WithFleet(gpufaas.FleetSpec{
			{Type: "t4", Count: 4, CostPerSecond: 0.20},
			{Type: "rtx2080", Count: 0, CostPerSecond: 0.60},
		}),
		gpufaas.WithAutoscaler(gpufaas.AutoscaleConfig{
			Policy:    pol,
			Interval:  2e9, // 2s ticks
			MinGPUs:   4,
			MaxGPUs:   24,
			ColdStart: 5e9, // 5s provisioning delay
			Horizon:   7 * 60 * 1e9,
		}))

	fmt.Printf("%-22s %10s %10s %8s %s\n", "fleet", "cost", "p95(s)", "peak", "per-class gpu-s")
	show := func(name string, rep gpufaas.Report) {
		classes := ""
		for i, cu := range rep.ClassUsage {
			if i > 0 {
				classes += " "
			}
			classes += fmt.Sprintf("%s=%.0f", cu.Class, cu.GPUSeconds)
		}
		fmt.Printf("%-22s %10.1f %10.2f %8d %s\n", name, rep.Cost, rep.P95LatencySec, rep.PeakGPUs, classes)
	}
	show("rtx2080 x12 (fixed)", fast)
	show("t4 x20 (fixed)", cheap)
	show("mixed (tiered auto)", mixed)
	fmt.Printf("\nmixed fleet spend vs fast fleet: %.0f%%  (scale events: %d)\n",
		100*mixed.Cost/fast.Cost, len(mixed.ScaleEvents))
}
