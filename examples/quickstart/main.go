// Quickstart: build the paper's 12-GPU cluster, replay a slice of the
// evaluation workload under the locality-aware scheduler, and print the
// headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpufaas"
)

func main() {
	// The paper's evaluation workload at working-set size 25: 6 minutes
	// of the Azure-shaped trace, normalized to 325 requests/minute, each
	// function bound to its own model instance from Table I.
	reqs, zoo, topModel, err := gpufaas.PaperWorkload(25, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A cluster shaped like the paper's testbed (3 nodes x 4 RTX 2080)
	// with the LALB+O3 scheduler; swap "LALBO3" for "LB" to feel the
	// difference locality makes.
	c, err := gpufaas.NewCluster(
		gpufaas.WithPolicy("LALBO3"),
		gpufaas.WithZoo(zoo),
	)
	if err != nil {
		log.Fatal(err)
	}
	c.TrackModel(topModel)

	rep, err := c.RunWorkload(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy            %s\n", rep.Policy)
	fmt.Printf("requests          %d (failed %d)\n", rep.Requests, rep.Failed)
	fmt.Printf("avg latency       %.2f s\n", rep.AvgLatencySec)
	fmt.Printf("p99 latency       %.2f s\n", rep.P99LatencySec)
	fmt.Printf("cache miss ratio  %.3f\n", rep.MissRatio)
	fmt.Printf("false miss ratio  %.3f\n", rep.FalseMissRatio)
	fmt.Printf("SM utilization    %.3f\n", rep.SMUtilization)
	fmt.Printf("top-model copies  %.2f (time-averaged)\n", rep.TopModelDuplicates)
}
