// Schedcompare: a miniature of the paper's Figure 4 — run the same
// evaluation workload under all three schedulers across the three
// working-set sizes and print the comparison matrix, including the
// relative reductions the paper headlines (e.g. "LALB reduces the average
// latency of LB by 97.74%").
//
//	go run ./examples/schedcompare
package main

import (
	"fmt"
	"log"
	"os"

	"gpufaas/internal/experiments"
	"gpufaas/internal/stats"
)

func main() {
	rows, err := experiments.Fig4Matrix()
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteFig4Table(os.Stdout, rows)

	byKey := map[string]experiments.Row{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Policy, r.WorkingSet)] = r
	}
	fmt.Println("\nrelative to the LB baseline:")
	for _, ws := range experiments.PaperWorkingSets {
		lb := byKey[fmt.Sprintf("LB/%d", ws)]
		for _, pol := range []string{"LALB", "LALBO3"} {
			r := byKey[fmt.Sprintf("%s/%d", pol, ws)]
			fmt.Printf("  ws=%-2d %-7s latency -%5.1f%%  miss -%5.1f%%  speedup %5.1fx\n",
				ws, pol,
				100*stats.Reduction(lb.AvgLatencySec, r.AvgLatencySec),
				100*stats.Reduction(lb.MissRatio, r.MissRatio),
				stats.Speedup(lb.AvgLatencySec, r.AvgLatencySec))
		}
	}
}
