// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§V). Each benchmark runs the corresponding experiment and
// reports the figure's metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every row/series the paper reports. Absolute times are the
// simulator's (driven by the paper's own Table I profile); the shape —
// who wins, by what factor, where the crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
package gpufaas

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/cache"
	"gpufaas/internal/core"
	"gpufaas/internal/experiments"
	"gpufaas/internal/sim"
	"gpufaas/internal/trace"
)

// benchRun executes one experiment per iteration and reports its metrics.
func benchRun(b *testing.B, p experiments.RunParams, metrics func(experiments.Row) map[string]float64) {
	b.Helper()
	var last experiments.Row
	for i := 0; i < b.N; i++ {
		row, err := experiments.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	for name, v := range metrics(last) {
		b.ReportMetric(v, name)
	}
}

// BenchmarkTableIProfiles regenerates Table I: per-model occupancy, load
// time and inference time at batch 32, via the §IV-A profiling procedure.
func BenchmarkTableIProfiles(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(first.LoadTime.Seconds(), "min_load_s")
		b.ReportMetric(last.LoadTime.Seconds(), "max_load_s")
		b.ReportMetric(float64(len(rows)), "models")
	}
}

// fig4Cases is the scheduler x working-set matrix shared by Figures 4-6.
func fig4Cases() []experiments.RunParams {
	var out []experiments.RunParams
	for _, ws := range experiments.PaperWorkingSets {
		for _, pol := range experiments.PaperPolicies {
			out = append(out, experiments.RunParams{Policy: pol, WorkingSet: ws})
		}
	}
	return out
}

func caseName(p experiments.RunParams) string {
	return fmt.Sprintf("%s/ws=%d", p.Policy, p.WorkingSet)
}

// BenchmarkFig4aLatency reproduces Fig. 4a: average function latency per
// scheduler and working-set size.
func BenchmarkFig4aLatency(b *testing.B) {
	for _, p := range fig4Cases() {
		p := p
		b.Run(caseName(p), func(b *testing.B) {
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"avg_latency_s": r.AvgLatencySec,
					"p99_latency_s": r.P99LatencySec,
				}
			})
		})
	}
}

// BenchmarkFig4bMissRatio reproduces Fig. 4b: cache miss ratio.
func BenchmarkFig4bMissRatio(b *testing.B) {
	for _, p := range fig4Cases() {
		p := p
		b.Run(caseName(p), func(b *testing.B) {
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{"miss_ratio": r.MissRatio}
			})
		})
	}
}

// BenchmarkFig4cUtilization reproduces Fig. 4c: average GPU (SM)
// utilization.
func BenchmarkFig4cUtilization(b *testing.B) {
	for _, p := range fig4Cases() {
		p := p
		b.Run(caseName(p), func(b *testing.B) {
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"sm_utilization": r.SMUtilization,
					"load_fraction":  r.LoadFraction,
				}
			})
		})
	}
}

// BenchmarkFig5FalseMiss reproduces Fig. 5: false-miss ratio.
func BenchmarkFig5FalseMiss(b *testing.B) {
	for _, p := range fig4Cases() {
		p := p
		b.Run(caseName(p), func(b *testing.B) {
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{"false_miss_ratio": r.FalseMissRatio}
			})
		})
	}
}

// BenchmarkFig6Duplicates reproduces Fig. 6: time-averaged duplicates of
// the most popular model.
func BenchmarkFig6Duplicates(b *testing.B) {
	for _, p := range fig4Cases() {
		p := p
		b.Run(caseName(p), func(b *testing.B) {
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{"dup_top1": r.TopModelDuplicates}
			})
		})
	}
}

// BenchmarkFig7O3Sensitivity reproduces Fig. 7: the O3 starvation-limit
// sweep at working set 35 (latency, miss ratio, latency variance).
func BenchmarkFig7O3Sensitivity(b *testing.B) {
	for _, limit := range experiments.Fig7Limits {
		limit := limit
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			p := experiments.RunParams{Policy: core.LALBO3, O3Limit: &limit, WorkingSet: 35}
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"avg_latency_s": r.AvgLatencySec,
					"miss_ratio":    r.MissRatio,
					"lat_var_s2":    r.LatencyVarianceSec2,
				}
			})
		})
	}
}

// BenchmarkAblationCachePolicy compares LRU/FIFO/LFU replacement under
// LALBO3 (the §VI "Cache Replacement Policy" discussion).
func BenchmarkAblationCachePolicy(b *testing.B) {
	for _, pol := range []string{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyLFU} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			p := experiments.RunParams{Policy: core.LALBO3, WorkingSet: 35, CachePolicy: pol}
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"avg_latency_s": r.AvgLatencySec,
					"miss_ratio":    r.MissRatio,
				}
			})
		})
	}
}

// BenchmarkAblationLocalQueue quantifies Algorithm 2's busy-GPU parking
// (the finish-time-estimation mechanism): LALB with and without the
// per-GPU local queues, at working set 25.
func BenchmarkAblationLocalQueue(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "parking=on"
		if disabled {
			name = "parking=off"
		}
		b.Run(name, func(b *testing.B) {
			p := experiments.RunParams{Policy: core.LALB, WorkingSet: 25, DisableLocalQueue: disabled}
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"avg_latency_s": r.AvgLatencySec,
					"miss_ratio":    r.MissRatio,
					"queue_moves":   float64(r.LocalQueueMoves),
				}
			})
		})
	}
}

// BenchmarkAblationGPUScaling scales the cluster (2..5 nodes x 4 GPUs)
// under LALBO3 at working set 25 (§VI "Overhead and Scalability").
func BenchmarkAblationGPUScaling(b *testing.B) {
	for _, nodes := range []int{2, 3, 4, 5} {
		nodes := nodes
		b.Run(fmt.Sprintf("gpus=%d", nodes*4), func(b *testing.B) {
			p := experiments.RunParams{Policy: core.LALBO3, WorkingSet: 25, Nodes: nodes, GPUsPerNode: 4}
			benchRun(b, p, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"avg_latency_s":  r.AvgLatencySec,
					"sm_utilization": r.SMUtilization,
				}
			})
		})
	}
}

// BenchmarkHeterogeneity runs the heterogeneity sweep cells
// (homogeneous-fast / homogeneous-cheap / mixed fleets on the non-flat
// traces), reporting the cost column the tiered autoscaler trades
// against p95.
func BenchmarkHeterogeneity(b *testing.B) {
	for _, cell := range experiments.HeterogeneitySpecs(testing.Short()) {
		cell := cell
		b.Run(cell.Name, func(b *testing.B) {
			benchRun(b, cell.Params, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"cost":        r.Cost,
					"gpu_seconds": r.GPUSeconds,
					"p95_s":       r.P95LatencySec,
					"peak_gpus":   float64(r.PeakGPUs),
				}
			})
		})
	}
}

// BenchmarkElasticity runs the elasticity sweep cells (fixed vs
// autoscaled fleets on diurnal/bursty traces), reporting the
// cost-vs-latency pair the autoscale subsystem trades on.
func BenchmarkElasticity(b *testing.B) {
	for _, cell := range experiments.ElasticitySpecs(testing.Short()) {
		cell := cell
		b.Run(cell.Name, func(b *testing.B) {
			benchRun(b, cell.Params, func(r experiments.Row) map[string]float64 {
				return map[string]float64{
					"gpu_seconds": r.GPUSeconds,
					"p95_s":       r.P95LatencySec,
					"miss_ratio":  r.MissRatio,
					"peak_gpus":   float64(r.PeakGPUs),
				}
			})
		})
	}
}

// BenchmarkAutoscaleDecision measures one autoscaler evaluation tick —
// signal sampling plus policy decision — against a live 12-GPU cluster.
// This is the control-plane overhead each tick adds to the event loop.
func BenchmarkAutoscaleDecision(b *testing.B) {
	for _, policy := range []string{"target-util", "step"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			pol, err := autoscale.ParsePolicy(policy, 0.7, 1, 4, 0.5, 2)
			if err != nil {
				b.Fatal(err)
			}
			c, err := NewCluster(WithAutoscaler(AutoscaleConfig{
				Policy:   pol,
				MinGPUs:  12,
				MaxGPUs:  12, // clamp to a no-op so ticks measure pure decision cost
				Horizon:  time.Minute,
				Interval: time.Second,
			}))
			if err != nil {
				b.Fatal(err)
			}
			// Pre-fill latency windows and fleet state with a tiny run.
			names := []string{"resnet18", "vgg19", "alexnet"}
			reqs := make([]trace.Request, 60)
			for i := range reqs {
				reqs[i] = trace.Request{
					ID: int64(i), Function: "bench", Model: names[i%len(names)],
					Arrival: time.Duration(i) * 100 * time.Millisecond, BatchSize: 32,
				}
			}
			if _, err := c.RunWorkload(reqs); err != nil {
				b.Fatal(err)
			}
			a := c.Autoscaler()
			now := c.Engine().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Evaluate(now)
			}
		})
	}
}

// schedBackend is a synthetic core.Backend over a large cluster used by
// BenchmarkScheduleDecision. In scan mode it reproduces the seed's
// lookup shape: GPUsCaching walks every GPU and idle GPUs are found by
// scanning Busy. The indexed variant (idleListerBackend wrapper +
// precomputed holder lists) is the shape the cluster backend has after
// the Cache-Manager-index / idle-set refactor.
type schedBackend struct {
	ids     []string
	busy    []bool                     // ord-indexed
	cached  map[string]map[string]bool // gpuID -> model set
	holders map[string][]core.Ord      // model -> GPU ords, ascending
	indexed bool
}

func (s *schedBackend) Ords() []core.Ord {
	out := make([]core.Ord, len(s.ids))
	for i := range s.ids {
		out[i] = core.Ord(i)
	}
	return out
}
func (s *schedBackend) OrdBound() core.Ord { return core.Ord(len(s.ids)) }
func (s *schedBackend) OrdOf(id string) (core.Ord, bool) {
	for i, g := range s.ids {
		if g == id {
			return core.Ord(i), true
		}
	}
	return 0, false
}
func (s *schedBackend) IDOf(o core.Ord) string           { return s.ids[o] }
func (s *schedBackend) Busy(o core.Ord) bool             { return s.busy[o] }
func (s *schedBackend) Cached(o core.Ord, m string) bool { return s.cached[s.ids[o]][m] }
func (s *schedBackend) GPUsCaching(m string) []core.Ord {
	if s.indexed {
		return s.holders[m]
	}
	// Seed shape: recompute the holder list by scanning every GPU.
	var out []core.Ord
	for i, id := range s.ids {
		if s.cached[id][m] {
			out = append(out, core.Ord(i))
		}
	}
	return out
}
func (s *schedBackend) EstimatedFinish(o core.Ord, now sim.Time) time.Duration {
	if s.busy[o] {
		return 40 * time.Millisecond
	}
	return 0
}
func (s *schedBackend) LoadTime(o core.Ord, m string) time.Duration { return 90 * time.Millisecond }
func (s *schedBackend) InferTime(o core.Ord, m string, batch int) time.Duration {
	return 12 * time.Millisecond
}

// idleListerBackend adds the core.IdleLister extension, so the scheduler
// iterates the precomputed idle set instead of scanning.
type idleListerBackend struct {
	*schedBackend
	idle []core.Ord
}

func (b idleListerBackend) IdleOrds() []core.Ord { return b.idle }

// newSchedBackend builds a 64-GPU, 192-model cluster snapshot: half the
// GPUs busy, each model resident on up to two GPUs.
func newSchedBackend(indexed bool) (core.Backend, *schedBackend) {
	const gpus, mdls = 64, 192
	s := &schedBackend{
		busy:    make([]bool, gpus),
		cached:  make(map[string]map[string]bool),
		holders: make(map[string][]core.Ord),
		indexed: indexed,
	}
	for g := 0; g < gpus; g++ {
		id := fmt.Sprintf("g%02d", g)
		s.ids = append(s.ids, id)
		s.cached[id] = make(map[string]bool)
		s.busy[g] = g%2 == 1
	}
	rng := rand.New(rand.NewSource(7))
	for m := 0; m < mdls; m++ {
		model := fmt.Sprintf("m%03d", m)
		for _, g := range []int{rng.Intn(gpus), rng.Intn(gpus)} {
			id := s.ids[g]
			if !s.cached[id][model] {
				s.cached[id][model] = true
			}
		}
		for g, id := range s.ids { // holders in registration (ord) order
			if s.cached[id][model] {
				s.holders[model] = append(s.holders[model], core.Ord(g))
			}
		}
	}
	if !indexed {
		return s, s
	}
	var idle []core.Ord
	for g := range s.ids {
		if !s.busy[g] {
			idle = append(idle, core.Ord(g))
		}
	}
	return idleListerBackend{schedBackend: s, idle: idle}, s
}

// schedRequests builds a deterministic queue of n requests over the
// backend's models (zipf-ish: low-numbered models are hotter).
func schedRequests(n int) []*core.Request {
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.2, 1.0, 191)
	reqs := make([]*core.Request, n)
	for i := range reqs {
		reqs[i] = &core.Request{
			ID:        int64(i),
			Model:     fmt.Sprintf("m%03d", zipf.Uint64()),
			BatchSize: 32,
			Arrival:   sim.Time(i),
		}
	}
	return reqs
}

// scheduleOnce runs one full Schedule round over a fresh scheduler and
// queue, returning the dispatches.
func scheduleOnce(b testing.TB, backend core.Backend, n int) []core.Dispatch {
	s, err := core.New(core.Config{Policy: core.LALBO3, O3Limit: core.DefaultO3Limit}, backend)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range schedRequests(n) {
		if err := s.Enqueue(r); err != nil {
			b.Fatal(err)
		}
	}
	return s.Schedule(sim.Time(n))
}

// TestScheduleDecisionEquivalence pins the refactor's contract: the
// indexed backend (incremental idle set + holder lists) and the
// scan-based backend produce identical dispatch sequences.
func TestScheduleDecisionEquivalence(t *testing.T) {
	idxBackend, _ := newSchedBackend(true)
	scanBackend, _ := newSchedBackend(false)
	di := scheduleOnce(t, idxBackend, 256)
	ds := scheduleOnce(t, scanBackend, 256)
	if len(di) != len(ds) {
		t.Fatalf("dispatch counts differ: indexed=%d scan=%d", len(di), len(ds))
	}
	for i := range di {
		if di[i].Req.ID != ds[i].Req.ID || di[i].GPU != ds[i].GPU ||
			di[i].ExpectHit != ds[i].ExpectHit || di[i].FromLocalQueue != ds[i].FromLocalQueue {
			t.Errorf("dispatch %d differs: indexed=%+v scan=%+v", i, di[i], ds[i])
		}
	}
	if len(di) == 0 {
		t.Fatal("no dispatches produced")
	}
}

// BenchmarkScheduleDecision measures one full Schedule round (64 GPUs,
// half busy, 256 queued requests) with the indexed backend (incremental
// idle set + model→resident-GPUs holder lists) against the seed's
// scan-based lookups. This is the hot path of every simulation event.
// The indexed/scan rows rebuild the scheduler and queue per iteration
// (fixture cost included, for cross-commit comparability); the steady row
// reuses one scheduler and measures the pure per-decision path — enqueue
// one request, run one Schedule round — which is where the ring-buffer
// queue, dense-ord state and pooled dispatch slices show up directly.
func BenchmarkScheduleDecision(b *testing.B) {
	for _, mode := range []string{"indexed", "scan"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			backend, _ := newSchedBackend(mode == "indexed")
			var dispatches int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dispatches = len(scheduleOnce(b, backend, 256))
			}
			b.ReportMetric(float64(dispatches), "dispatches")
		})
	}
	b.Run("steady", func(b *testing.B) {
		// Fully-idle fleet: every round dispatches exactly the request it
		// enqueued (idle holders mean a hit elsewhere or a miss here, and
		// never a park), so pool requests recycle only after dispatch and
		// the measured shape is fixed regardless of b.N.
		_, raw := newSchedBackend(true)
		for i := range raw.busy {
			raw.busy[i] = false
		}
		idle := make([]core.Ord, len(raw.ids))
		for i := range idle {
			idle[i] = core.Ord(i)
		}
		s, err := core.New(core.Config{Policy: core.LALBO3, O3Limit: core.DefaultO3Limit},
			idleListerBackend{schedBackend: raw, idle: idle})
		if err != nil {
			b.Fatal(err)
		}
		reqs := schedRequests(256)
		var dispatched int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reqs[i%len(reqs)]
			r.Arrival = sim.Time(i)
			if err := s.Enqueue(r); err != nil {
				b.Fatal(err)
			}
			n := len(s.Schedule(sim.Time(i)))
			if n != 1 {
				b.Fatalf("steady round dispatched %d requests", n)
			}
			dispatched += n
		}
		b.ReportMetric(float64(dispatched)/float64(b.N), "dispatches/op")
	})
}

// TestHotpathZeroAlloc pins the observability tentpole's cost contract:
// with tracing disabled (the zero obs.Options), the two hot loops every
// simulated request crosses — the engine's schedule+fire cycle and the
// steady per-decision scheduler round — stay at 0 allocs/op. The
// instrumentation hooks are nil-guarded pointer checks; if one ever
// escapes into an allocation on the disabled path, this fails before
// the BENCH snapshot quietly regresses.
func TestHotpathZeroAlloc(t *testing.T) {
	t.Run("engine_fire", func(t *testing.T) {
		e := sim.New()
		fn := func(sim.Time) {}
		// Warm the engine's event pool before measuring.
		for i := 0; i < 512; i++ {
			e.After(time.Millisecond, "fire", fn)
			e.Step()
		}
		if avg := testing.AllocsPerRun(1000, func() {
			e.After(time.Millisecond, "fire", fn)
			e.Step()
		}); avg != 0 {
			t.Errorf("engine fire allocates %.2f allocs/op, want 0", avg)
		}
	})
	t.Run("steady_decision", func(t *testing.T) {
		// The steady fixture from BenchmarkScheduleDecision: fully idle
		// 64-GPU fleet, so every round dispatches exactly one request.
		_, raw := newSchedBackend(true)
		for i := range raw.busy {
			raw.busy[i] = false
		}
		idle := make([]core.Ord, len(raw.ids))
		for i := range idle {
			idle[i] = core.Ord(i)
		}
		s, err := core.New(core.Config{Policy: core.LALBO3, O3Limit: core.DefaultO3Limit},
			idleListerBackend{schedBackend: raw, idle: idle})
		if err != nil {
			t.Fatal(err)
		}
		reqs := schedRequests(256)
		tick := 0
		round := func() {
			r := reqs[tick%len(reqs)]
			r.Arrival = sim.Time(tick)
			if err := s.Enqueue(r); err != nil {
				t.Fatal(err)
			}
			if n := len(s.Schedule(sim.Time(tick))); n != 1 {
				t.Fatalf("steady round dispatched %d requests", n)
			}
			tick++
		}
		for i := 0; i < 512; i++ {
			round() // warm the queue ring, dispatch pool and ord state
		}
		if avg := testing.AllocsPerRun(1000, round); avg != 0 {
			t.Errorf("steady decision allocates %.2f allocs/op, want 0", avg)
		}
	})
}

// BenchmarkSchedulerOverhead measures the raw decision cost of one
// Schedule round at a realistic queue depth — the §VI scalability claim
// that decisions are bounded by cached-model counts rather than queue
// length.
func BenchmarkSchedulerOverhead(b *testing.B) {
	rep, err := RunExperiment("LALBO3", 35)
	if err != nil {
		b.Fatal(err)
	}
	// The experiment above is the workload; re-running per iteration
	// keeps this honest but slow. Instead report events/op from a single
	// run and time full simulations.
	_ = rep
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("LALBO3", 35); err != nil {
			b.Fatal(err)
		}
	}
}
